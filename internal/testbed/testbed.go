// Package testbed assembles the full experiment pipeline of Sec. III-E:
// a three-broker cluster, an emulated network path with injected faults,
// a producer driven by synthetic source data, and a consumer-side
// reconciliation that yields the ground-truth reliability metrics P_l
// and P_d for a given feature vector. One Run is the simulated
// equivalent of one Docker-testbed experiment.
package testbed

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"kafkarel/internal/broker"
	"kafkarel/internal/chaos"
	"kafkarel/internal/cluster"
	"kafkarel/internal/consumer"
	"kafkarel/internal/coordinator"
	"kafkarel/internal/des"
	"kafkarel/internal/exprun"
	"kafkarel/internal/features"
	"kafkarel/internal/netem"
	"kafkarel/internal/obs"
	"kafkarel/internal/producer"
	"kafkarel/internal/stats"
	"kafkarel/internal/transport"
	"kafkarel/internal/wire"
	"kafkarel/internal/workload"
)

// Experiment describes one testbed run. The Features vector carries the
// paper's eight prediction features; the remaining fields are the fixed
// plumbing of the testbed itself.
type Experiment struct {
	Features features.Vector
	// Messages is the number of source messages (the paper uses 10^6; the
	// probabilities converge much earlier).
	Messages int
	// Seed makes the run reproducible.
	Seed uint64
	// Partitions is the topic's partition count (default 1). Above 1 the
	// producer round-robins batches across partitions and the consumer
	// reconciles all of them.
	Partitions int
	// Calibration overrides the host cost constants (zero value: default).
	Calibration Calibration
	// Trace, when non-empty, drives a time-varying network instead of the
	// constant Features.DelayMs / Features.LossRate.
	Trace netem.Trace
	// MaxSimTime caps the virtual duration (0 = none); experiments cut
	// short report metrics over the messages acquired so far.
	MaxSimTime time.Duration
	// FaultPlan schedules chaos faults across every layer — broker
	// crashes, unclean restarts, network partitions, burst loss, delay
	// spikes, connection resets, broker slowdowns (see internal/chaos).
	FaultPlan chaos.Plan
	// ReplicationFactor overrides the topic's replication factor
	// (default 3, the paper's three-broker testbed).
	ReplicationFactor int
	// MinISR is the minimum in-sync replica count acks=all requests
	// require (default 1): with MinISR > 1, a broker outage makes
	// produce requests fail fast with ErrNotEnoughReplicas instead of
	// acking on the survivors.
	MinISR int
	// BrokerFlushInterval sets the brokers' fsync cadence. Zero (the
	// default) keeps every append durable; a positive interval opens the
	// real acks=1 data-loss window under unclean restarts.
	BrokerFlushInterval time.Duration
	// CaptureEvidence retains the per-record outcome log, the
	// per-partition consumed keys, and per-broker counters on the Result
	// — the chaos invariant checker's inputs. Off by default (the outcome
	// log is memory-heavy for large runs).
	CaptureEvidence bool
	// Consumers, when positive, runs a consumer group of that many
	// members through the broker-side group coordinator alongside the
	// producer: members join at t=0, poll their assigned partitions,
	// commit through the replicated offsets log, and leave once the
	// producer is done and their partitions are drained and committed.
	// Requires MaxSimTime > 0 (a group stuck on a permanently
	// unservable partition polls until its idle give-up, and the run
	// needs a horizon). Exactly-once features run the group with
	// offset-dedup on; everything the group saw comes back in the
	// Result's Group* fields. ConsumerCrash faults in the plan target
	// this group.
	Consumers int
	// Groups fans the consumption out to that many independent consumer
	// groups (ids "g00", "g01", ...), each with Consumers members, all
	// subscribed to the topic and sharing one coordinator and offsets
	// log. The default (0 or 1) runs the single legacy group "testbed".
	// ConsumerCrash faults select a group via Fault.Group; results come
	// back per group in Result.GroupRuns.
	Groups int
	// Cooperative runs the consumer group(s) under the incremental
	// cooperative rebalance protocol (KIP-429) instead of the eager
	// stop-the-world default.
	Cooperative bool
	// OffsetsReplication overrides the coordinator's offsets-topic
	// replication factor (default min(3, brokers)). Running it at 1
	// under unclean restarts is how committed offsets get lost.
	OffsetsReplication int
	// Schedule applies configuration changes at virtual times — the
	// paper's dynamic-configuration mechanism (Sec. V). Each change maps
	// the vector's configuration features (semantics, B, δ, T_o) onto the
	// running producer; the stream and network features of scheduled
	// vectors are ignored.
	Schedule []ConfigChange
	// DisableMetrics switches off the per-run obs.Registry; Result.Metrics
	// then stays zero. Metrics are on by default (they are cheap: atomic
	// word-sized updates with handles resolved at build time).
	DisableMetrics bool
	// Tracer, when non-nil, receives the run's structured event stream
	// (record lifecycle, transport, broker events). The testbed binds the
	// tracer to the run's virtual clock. Tracing requires a single
	// producer: RunScaled rejects a traced experiment.
	Tracer *obs.Tracer
	// Timeline, when non-nil, samples the run at the timeline's interval
	// (netem, transport, producer and broker probes) and records config
	// switches and broker events as annotations; it comes back as
	// Result.Timeline. Under RunScaled it acts as an interval template:
	// each sub-simulation samples its own entity-tagged timeline and the
	// merged Result.Timelines carries all of them.
	Timeline *obs.Timeline
	// Overrides for producer plumbing; zero values take the defaults
	// below.
	QueueLimit     int
	MaxInFlight    int
	MaxRetries     int
	RequestTimeout time.Duration
	RetryBackoff   time.Duration
	// RetryBackoffMax, when positive, switches retries from fixed backoff
	// to exponential backoff with decorrelated jitter capped here; the
	// jitter draws from a PCG stream derived from Seed, so runs stay
	// deterministic.
	RetryBackoffMax time.Duration
	LingerTime      time.Duration
}

// ConfigChange is one scheduled reconfiguration.
type ConfigChange struct {
	At       time.Duration
	Features features.Vector
}

// Plumbing defaults (see DESIGN.md §5 for how they were chosen).
const (
	DefaultQueueLimit     = 12
	DefaultMaxInFlight    = 5
	DefaultMaxRetries     = 5
	DefaultRequestTimeout = 2000 * time.Millisecond
	DefaultRetryBackoff   = 20 * time.Millisecond
	DefaultLingerTime     = 5 * time.Millisecond
)

// Result is everything one run measures.
type Result struct {
	// Pl and Pd are the ground-truth reliability metrics from consumer
	// reconciliation (Sec. III-F).
	Pl float64
	Pd float64
	// Report is the full consumer reconciliation.
	Report consumer.Report
	// Producer is the producer-view Table I case distribution.
	Producer producer.Counts
	// Metrics is the per-run observability snapshot (zero when
	// Experiment.DisableMetrics was set).
	Metrics MetricsSnapshot
	// Timeline echoes Experiment.Timeline after the run, with a final
	// sample taken once the simulation drained (so late broker appends
	// are covered and column sums equal the Metrics counters).
	Timeline *obs.Timeline
	// Timelines collects every timeline the run produced, in producer
	// order. A single Run yields at most one (== Timeline); RunScaled
	// yields one per simulated producer, each tagged with its entity
	// ("p0000", "p0001", ...) for obs.WriteMergedCSV.
	Timelines []*obs.Timeline
	// Latency summarises delivered-message T_p in milliseconds.
	Latency stats.Summary
	// StaleRate is the fraction of delivered messages with T_p > S.
	StaleRate float64
	// Throughput is delivered messages per simulated second.
	Throughput float64
	// BandwidthUtilization is the measured φ: delivered forward-link bytes
	// over link capacity for the run duration.
	BandwidthUtilization float64
	// Acquired is how many source messages entered the producer.
	Acquired uint64
	// Duration is the simulated run time.
	Duration time.Duration
	// Completed reports whether the source drained before MaxSimTime.
	Completed bool
	// Outcomes is the per-record outcome log (Experiment.CaptureEvidence).
	Outcomes []producer.Outcome
	// ConsumedKeys holds, per partition, the consumed record keys in
	// offset order (Experiment.CaptureEvidence).
	ConsumedKeys [][]uint64
	// BrokerStats is every broker's counter snapshot, indexed by node ID.
	BrokerStats []broker.Stats
	// GroupEvidence is the consumer group's delivery record
	// (Experiment.Consumers > 0).
	GroupEvidence *consumer.Evidence
	// GroupConsumedKeys is the group's per-partition application stream.
	GroupConsumedKeys [][]uint64
	// GroupCommitted is the durable committed offset per partition at
	// the end of the run (-1 = nothing committed).
	GroupCommitted []int64
	// GroupLag is the per-partition records between the durable
	// committed offsets and the high watermarks at the end of the run
	// (zero everywhere for a drained group).
	GroupLag []int64
	// Coordinator is the group coordinator's activity counters.
	Coordinator *coordinator.Stats
	// OffsetRegressions are committed watermarks the offsets log lost
	// across unclean restarts.
	OffsetRegressions []coordinator.OffsetRegression
	// GroupRuns holds one entry per consumer group in join order
	// (Experiment.Groups); the legacy Group* fields above mirror
	// GroupRuns[0].
	GroupRuns []GroupRun
}

// GroupRun is one consumer group's slice of a multi-group run.
type GroupRun struct {
	// ID is the group id ("testbed", or "g00", "g01", ... when fanned
	// out).
	ID string
	// Evidence is the group's delivery record.
	Evidence consumer.Evidence
	// ConsumedKeys is the group's per-partition application stream.
	ConsumedKeys [][]uint64
	// Committed is the durable committed offset per partition at the end
	// of the run (-1 = nothing committed).
	Committed []int64
	// Lag is the per-partition end-of-run backlog.
	Lag []int64
	// Stats is the coordinator's per-group activity ledger.
	Stats coordinator.GroupStats
}

// Run executes one experiment.
func Run(e Experiment) (Result, error) {
	return runOn(des.New(), e)
}

// trialScratch is the warm state a worker keeps between trials.
type trialScratch struct {
	sim *des.Simulator
}

// RunCtx executes one experiment like Run, but when ctx belongs to an
// exprun worker it reuses the worker's simulator across trials
// (des.Reset keeps the event heap and free-list capacity), so a sweep's
// steady-state trials skip the per-run warm-up allocations. Results are
// byte-identical to Run's.
func RunCtx(ctx context.Context, e Experiment) (Result, error) {
	return runOn(simFor(ctx), e)
}

// simFor returns the simulator a run should use: the calling exprun
// worker's warm simulator (reset, keeping its event-heap and free-list
// capacity) when ctx belongs to a worker pool, or a fresh one
// otherwise. RunCtx trials and fleet shards share it.
func simFor(ctx context.Context) *des.Simulator {
	s := exprun.ContextScratch(ctx)
	if s == nil {
		return des.New()
	}
	ts, ok := s.Get().(*trialScratch)
	if !ok {
		ts = &trialScratch{sim: des.New()}
		s.Set(ts)
	} else {
		ts.sim.Reset()
	}
	return ts.sim
}

func runOn(sim *des.Simulator, e Experiment) (Result, error) {
	if err := e.Features.Validate(); err != nil {
		return Result{}, fmt.Errorf("testbed: %w", err)
	}
	if e.Messages <= 0 {
		return Result{}, fmt.Errorf("testbed: message count %d <= 0", e.Messages)
	}
	cal := e.Calibration
	if cal == (Calibration{}) {
		cal = DefaultCalibration()
	}
	if err := cal.Validate(); err != nil {
		return Result{}, err
	}

	rig, err := buildRig(sim, e, cal)
	if err != nil {
		return Result{}, err
	}
	rig.prod.Start()

	const eventCap = 2_000_000_000
	if e.MaxSimTime > 0 {
		if err := sim.RunUntil(e.MaxSimTime); err != nil {
			return Result{}, fmt.Errorf("testbed: run: %w", err)
		}
	} else if err := sim.RunLimit(eventCap); err != nil {
		return Result{}, fmt.Errorf("testbed: event cap exceeded (runaway experiment?): %w", err)
	}

	return rig.collect(sim, e)
}

// rig is the assembled simulation.
type rig struct {
	path   *netem.Path
	conn   *transport.Conn
	clst   *cluster.Cluster
	prod   *producer.Producer
	co     *coordinator.Coordinator
	group  *consumer.Group   // first group (legacy single-group surface)
	groups []*consumer.Group // every group, in join order
	reg    *obs.Registry
	cfgErr error
	doneAt time.Duration // virtual time the producer finished (-1 if cut off)
}

func buildRig(sim *des.Simulator, e Experiment, cal Calibration) (*rig, error) {
	var reg *obs.Registry
	if !e.DisableMetrics {
		reg = obs.NewRegistry()
	}
	e.Tracer.BindClock(sim)
	e.Timeline.BindClock(sim)
	o := &obs.Obs{Registry: reg, Trace: e.Tracer}
	sim.Instrument(o)

	linkCfg := func(seed uint64) (netem.Config, error) {
		cfg := netem.Config{Bandwidth: cal.Bandwidth, QueueLimit: 1000, Obs: o}
		if len(e.Trace) == 0 {
			if e.Features.DelayMs > 0 {
				cfg.Delay = stats.Constant{Value: e.Features.DelayMs}
			}
			if e.Features.LossRate > 0 {
				loss, err := stats.NewBernoulli(e.Features.LossRate, rand.New(rand.NewPCG(seed, 0x01)))
				if err != nil {
					return cfg, err
				}
				cfg.Loss = loss
			}
		}
		return cfg, nil
	}
	fwd, err := linkCfg(e.Seed)
	if err != nil {
		return nil, fmt.Errorf("testbed: forward link: %w", err)
	}
	rev, err := linkCfg(e.Seed + 1)
	if err != nil {
		return nil, fmt.Errorf("testbed: reverse link: %w", err)
	}
	path, err := netem.NewPath(sim, fwd, rev)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	if len(e.Trace) > 0 {
		if err := e.Trace.Apply(sim, path); err != nil {
			return nil, fmt.Errorf("testbed: %w", err)
		}
	}

	conn, err := transport.NewConn(sim, path, transport.Config{SendBufferLimit: cal.SocketBuffer, Obs: o})
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	clstCfg := cluster.DefaultConfig()
	clstCfg.Obs = o
	clstCfg.Broker.Obs = o
	clstCfg.Broker.FlushInterval = e.BrokerFlushInterval
	clstCfg.MinISR = e.MinISR
	clst, err := cluster.New(sim, clstCfg)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	const topic = "stream"
	rf := exprun.DefInt(e.ReplicationFactor, 3)
	if err := clst.CreateTopic(topic, exprun.DefInt(e.Partitions, 1), rf); err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	srv, err := cluster.NewServer(clst, conn.Server)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	conn.OnReset(srv.ResetParser)

	src, err := workload.NewFixedSource(e.Features.MessageSize, e.Messages)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	pcfg, err := producerConfig(e, topic)
	if err != nil {
		return nil, err
	}
	costs := newCostModel(cal, rand.New(rand.NewPCG(e.Seed, 0x02)))
	r := &rig{path: path, conn: conn, clst: clst, reg: reg, doneAt: -1}
	if e.Consumers > 0 {
		if e.MaxSimTime <= 0 {
			return nil, fmt.Errorf("testbed: Consumers > 0 requires MaxSimTime")
		}
		co, err := coordinator.New(sim, clst, coordinator.Config{
			OffsetsReplication: e.OffsetsReplication,
			Obs:                o,
		})
		if err != nil {
			return nil, fmt.Errorf("testbed: %w", err)
		}
		nGroups := exprun.DefInt(e.Groups, 1)
		for gi := 0; gi < nGroups; gi++ {
			id := "testbed"
			if nGroups > 1 {
				id = fmt.Sprintf("g%02d", gi)
			}
			grp, err := consumer.NewGroup(sim, co, clst, consumer.GroupConfig{
				ID:              id,
				Topic:           topic,
				Auto:            true,
				Cooperative:     e.Cooperative,
				Dedup:           e.Features.Semantics == features.SemanticsExactlyOnce,
				CaptureEvidence: e.CaptureEvidence,
				IdleGiveUp:      time.Second,
				Obs:             o,
			})
			if err != nil {
				return nil, fmt.Errorf("testbed: %w", err)
			}
			for i := 0; i < e.Consumers; i++ {
				if err := grp.Join(fmt.Sprintf("c%02d", i)); err != nil {
					return nil, fmt.Errorf("testbed: %w", err)
				}
			}
			r.groups = append(r.groups, grp)
		}
		r.co, r.group = co, r.groups[0]
	}
	if len(e.FaultPlan.Faults) > 0 {
		plan := chaos.Plan{Faults: append([]chaos.Fault(nil), e.FaultPlan.Faults...)}
		err := chaos.Schedule(plan, chaos.Targets{
			Sim:      sim,
			Cluster:  clst,
			Path:     path,
			Conn:     conn,
			Group:    r.group,
			Groups:   r.groups,
			Timeline: e.Timeline,
			Seed:     e.Seed,
			OnError: func(err error) {
				if r.cfgErr == nil {
					r.cfgErr = err
				}
			},
		})
		if err != nil {
			return nil, fmt.Errorf("testbed: fault plan: %w", err)
		}
	}
	opts := []producer.Option{
		producer.WithTimeliness(e.Features.Timeliness),
		producer.WithCompletion(func() { r.doneAt = sim.Now() }),
		producer.WithObs(o),
		producer.WithRetryRand(rand.New(rand.NewPCG(e.Seed, 0x03))),
	}
	if e.CaptureEvidence {
		opts = append(opts, producer.WithOutcomeLog())
	}
	prod, err := producer.New(sim, pcfg, costs, conn, src, opts...)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	r.prod = prod
	for _, grp := range r.groups {
		grp.SetDrainCheck(prod.Done)
	}
	for i, change := range e.Schedule {
		next := e
		next.Features = change.Features
		ncfg, err := producerConfig(next, topic)
		if err != nil {
			return nil, fmt.Errorf("testbed: schedule entry %d: %w", i, err)
		}
		sim.Schedule(change.At, func() {
			// Reconfigure pins topic/partition/producer ID itself; a
			// schedule entry can only carry tunable parameters.
			if err := prod.Reconfigure(ncfg); err != nil {
				if r.cfgErr == nil {
					r.cfgErr = err
				}
				return
			}
			e.Timeline.Annotate(obs.AnnConfigSwitch, describeConfig(change.Features))
		})
	}
	if e.Timeline != nil {
		// The transport probe shows the client's gauges (cwnd, SRTT, RTO,
		// in-flight) but sums the counters over both endpoints: they feed
		// the same registry counters, and the cross-check against the
		// metrics snapshot requires the timeline to match them.
		transProbe := func() obs.TransportProbe {
			p := conn.Client.Probe()
			s := conn.Server.Probe()
			p.SegmentsSent += s.SegmentsSent
			p.Retransmits += s.Retransmits
			p.RTOTimeouts += s.RTOTimeouts
			return p
		}
		e.Timeline.SetProbes(path.Probe, transProbe, prod.Probe,
			func() obs.BrokerProbe { return clst.Probe(topic) })
		if r.group != nil {
			e.Timeline.SetGroupProbe(r.group.Probe)
		}
		// Row 0 anchors the series at t=0; the ticker adds one row per
		// interval and stops itself once the producer finishes, so the
		// event queue can drain (collect takes the final sample).
		e.Timeline.Sample()
		var tick *des.Ticker
		tick = des.NewTicker(sim, e.Timeline.Interval(), func() {
			if prod.Done() {
				tick.Stop()
				return
			}
			e.Timeline.Sample()
		})
	}
	return r, nil
}

// describeConfig renders the tunable configuration features of a vector
// for timeline annotations — the parameters a schedule entry or an
// online decision actually applies.
func describeConfig(v features.Vector) string {
	sem := fmt.Sprintf("sem%d", v.Semantics)
	switch v.Semantics {
	case features.SemanticsAtMostOnce:
		sem = "at-most-once"
	case features.SemanticsAtLeastOnce:
		sem = "at-least-once"
	case features.SemanticsExactlyOnce:
		sem = "exactly-once"
	}
	return fmt.Sprintf("%s B=%d delta=%v To=%v",
		sem, v.BatchSize, v.PollInterval, v.MessageTimeout)
}

// producerConfig maps a feature vector plus experiment overrides onto the
// producer configuration.
func producerConfig(e Experiment, topic string) (producer.Config, error) {
	var sem producer.Semantics
	switch e.Features.Semantics {
	case features.SemanticsAtMostOnce:
		sem = producer.AtMostOnce
	case features.SemanticsAtLeastOnce:
		sem = producer.AtLeastOnce
	case features.SemanticsExactlyOnce:
		sem = producer.ExactlyOnce
	default:
		return producer.Config{}, fmt.Errorf("testbed: unknown semantics %d", e.Features.Semantics)
	}
	cfg := producer.Config{
		Topic:           topic,
		Semantics:       sem,
		BatchSize:       e.Features.BatchSize,
		PollInterval:    e.Features.PollInterval,
		MessageTimeout:  e.Features.MessageTimeout,
		MaxRetries:      exprun.DefInt(e.MaxRetries, DefaultMaxRetries),
		RetryBackoff:    exprun.DefDur(e.RetryBackoff, DefaultRetryBackoff),
		RetryBackoffMax: e.RetryBackoffMax,
		RequestTimeout:  exprun.DefDur(e.RequestTimeout, DefaultRequestTimeout),
		MaxInFlight:     exprun.DefInt(e.MaxInFlight, DefaultMaxInFlight),
		Partitions:      int32(exprun.DefInt(e.Partitions, 1)),
		QueueLimit:      exprun.DefInt(e.QueueLimit, DefaultQueueLimit),
		LingerTime:      exprun.DefDur(e.LingerTime, DefaultLingerTime),
		ReconnectDelay:  50 * time.Millisecond,
	}
	// Always assigned: idempotence only engages when the semantics is
	// exactly-once, and a schedule may switch semantics mid-run.
	cfg.ProducerID = e.Seed + 1
	return cfg, nil
}

// collect verifies and aggregates the run.
func (r *rig) collect(sim *des.Simulator, e Experiment) (Result, error) {
	if r.cfgErr != nil {
		return Result{}, fmt.Errorf("testbed: scheduled reconfiguration: %w", r.cfgErr)
	}
	// Final sample after the simulation drained: the ticker stops at the
	// first tick past producer completion, but late appends (a spurious
	// retry's first copy landing after the last record resolved) must
	// still fall inside a row for column sums to equal the counters.
	e.Timeline.Sample()
	res := Result{
		Timeline:  e.Timeline,
		Producer:  r.prod.Counts(),
		Latency:   r.prod.Latency(),
		Acquired:  r.prod.Acquired(),
		Duration:  sim.Now(),
		Completed: r.prod.Done(),
	}
	if e.Timeline != nil {
		res.Timelines = []*obs.Timeline{e.Timeline}
	}
	if r.doneAt >= 0 {
		res.Duration = r.doneAt
	}
	var recs []wire.Record
	for p := int32(0); p < int32(exprun.DefInt(e.Partitions, 1)); p++ {
		cons, err := consumer.New(r.clst, r.prod.Config().Topic, p)
		if err != nil {
			return Result{}, fmt.Errorf("testbed: %w", err)
		}
		part, err := cons.ConsumeAll()
		if err != nil {
			return Result{}, fmt.Errorf("testbed: partition %d: %w", p, err)
		}
		recs = append(recs, part...)
		if e.CaptureEvidence {
			keys := make([]uint64, len(part))
			for i, rec := range part {
				keys[i] = rec.Key
			}
			res.ConsumedKeys = append(res.ConsumedKeys, keys)
		}
	}
	if e.CaptureEvidence {
		res.Outcomes = r.prod.Outcomes()
	}
	res.BrokerStats = r.clst.StatsAll()
	for _, grp := range r.groups {
		ev := grp.Evidence()
		gr := GroupRun{
			ID:           ev.Group,
			Evidence:     ev,
			ConsumedKeys: grp.ConsumedKeys(),
			Stats:        r.co.GroupStats(ev.Group),
		}
		committed := make([]int64, grp.Partitions())
		for p := range committed {
			off, err := grp.Committed(int32(p))
			switch {
			case err == nil:
				committed[p] = off
			case errors.Is(err, consumer.ErrNoCommit):
				committed[p] = -1
			default:
				return Result{}, fmt.Errorf("testbed: final committed offset: %w", err)
			}
		}
		gr.Committed = committed
		// Authoritative lag when the cluster can answer; the group's own
		// durable view when a partition ended the run leaderless.
		if lags, err := grp.LagByPartition(); err == nil {
			gr.Lag = lags
		} else {
			gr.Lag = grp.Probe().LagByPartition
		}
		res.GroupRuns = append(res.GroupRuns, gr)
	}
	if len(res.GroupRuns) > 0 {
		first := res.GroupRuns[0]
		res.GroupEvidence = &first.Evidence
		res.GroupConsumedKeys = first.ConsumedKeys
		res.GroupCommitted = first.Committed
		res.GroupLag = first.Lag
		st := r.co.Stats()
		res.Coordinator = &st
		res.OffsetRegressions = r.co.Regressions()
	}
	res.Report = consumer.Reconcile(res.Acquired, recs)
	res.Pl = res.Report.Pl()
	res.Pd = res.Report.Pd()
	if r.reg != nil {
		res.Metrics = snapshotMetrics(r.reg.Snapshot())
		res.Metrics.Cases = res.Producer.ByCase
		// Case 5 (duplicated) is only observable at the consumer.
		res.Metrics.Cases[producer.Case5] = res.Report.NDuplicated
	}
	if d := res.Duration.Seconds(); d > 0 {
		res.Throughput = float64(res.Report.Distinct) / d
		cal := e.Calibration
		if cal == (Calibration{}) {
			cal = DefaultCalibration()
		}
		res.BandwidthUtilization = float64(r.path.Fwd.Counters().BytesDelivery*8) / (cal.Bandwidth * d)
	}
	if res.Producer.Delivered > 0 {
		res.StaleRate = float64(r.prod.Stale()) / float64(res.Producer.Delivered)
	}
	return res, nil
}
