package stats

import (
	"fmt"
	"math/rand/v2"
)

// LossModel decides, per packet, whether the packet is dropped.
type LossModel interface {
	// Drop returns true when the next packet should be lost.
	Drop() bool
	// Rate returns the model's long-run loss probability.
	Rate() float64
}

// NoLoss never drops packets.
type NoLoss struct{}

// Drop implements LossModel.
func (NoLoss) Drop() bool { return false }

// Rate implements LossModel.
func (NoLoss) Rate() float64 { return 0 }

// AlwaysLoss drops every packet — a severed link, used by network
// partition fault windows.
type AlwaysLoss struct{}

// Drop implements LossModel.
func (AlwaysLoss) Drop() bool { return true }

// Rate implements LossModel.
func (AlwaysLoss) Rate() float64 { return 1 }

// Bernoulli drops each packet independently with probability P. This is
// NetEm's plain "loss X%" mode used in the Figs. 4-8 experiments.
type Bernoulli struct {
	P    float64
	Rand *rand.Rand
}

// NewBernoulli returns an independent-loss model with probability p.
func NewBernoulli(p float64, rng *rand.Rand) (*Bernoulli, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("stats: bernoulli p %v outside [0,1]", p)
	}
	if rng == nil && p > 0 {
		return nil, fmt.Errorf("stats: bernoulli requires a random source")
	}
	return &Bernoulli{P: p, Rand: rng}, nil
}

// Drop implements LossModel.
func (b *Bernoulli) Drop() bool {
	if b.P <= 0 {
		return false
	}
	return b.Rand.Float64() < b.P
}

// Rate implements LossModel.
func (b *Bernoulli) Rate() float64 { return b.P }

// GilbertElliot is the classic two-state Markov burst-loss model used to
// characterise wireless links (Bildea et al., PIMRC 2015) and by the
// paper's Fig. 9 network. The chain alternates between a Good state with
// per-packet loss probability 1-K and a Bad state with loss probability
// 1-H; P is the Good→Bad transition probability and R the Bad→Good one.
type GilbertElliot struct {
	P, R float64 // state transition probabilities
	K, H float64 // per-packet *delivery* probabilities in Good and Bad
	Rand *rand.Rand

	bad bool
}

// NewGilbertElliot validates the four parameters and returns a model
// starting in the Good state. The common simplified Gilbert model is
// K=1 (no loss in Good), H=0 (all lost in Bad).
func NewGilbertElliot(p, r, k, h float64, rng *rand.Rand) (*GilbertElliot, error) {
	for name, v := range map[string]float64{"p": p, "r": r, "k": k, "h": h} {
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("stats: gilbert-elliot %s = %v outside [0,1]", name, v)
		}
	}
	if rng == nil {
		return nil, fmt.Errorf("stats: gilbert-elliot requires a random source")
	}
	return &GilbertElliot{P: p, R: r, K: k, H: h, Rand: rng}, nil
}

// Drop implements LossModel: advance the chain, then draw a per-packet
// loss according to the current state.
func (g *GilbertElliot) Drop() bool {
	if g.bad {
		if g.Rand.Float64() < g.R {
			g.bad = false
		}
	} else {
		if g.Rand.Float64() < g.P {
			g.bad = true
		}
	}
	deliver := g.K
	if g.bad {
		deliver = g.H
	}
	return g.Rand.Float64() >= deliver
}

// Bad reports whether the chain currently sits in the Bad state.
func (g *GilbertElliot) Bad() bool { return g.bad }

// Rate implements LossModel: the stationary loss probability
// π_bad·(1-H) + π_good·(1-K) with π_bad = P/(P+R).
func (g *GilbertElliot) Rate() float64 {
	if g.P+g.R == 0 {
		// Chain never moves: loss rate is that of the starting state.
		if g.bad {
			return 1 - g.H
		}
		return 1 - g.K
	}
	piBad := g.P / (g.P + g.R)
	return piBad*(1-g.H) + (1-piBad)*(1-g.K)
}
