// Package stats provides the probability distributions and loss models the
// testbed injects (Pareto delay per Zhang & He [23], Gilbert-Elliot packet
// loss per Bildea et al. [24]) plus small online-statistics helpers used
// throughout the repository.
package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"
)

// Sampler produces one draw per call. All samplers in this package are
// deterministic given the *rand.Rand they were constructed with.
type Sampler interface {
	Sample() float64
}

// Constant always returns the same value. It is the zero-jitter delay
// model.
type Constant struct{ Value float64 }

// Sample implements Sampler.
func (c Constant) Sample() float64 { return c.Value }

// Uniform samples uniformly from [Min, Max).
type Uniform struct {
	Min, Max float64
	Rand     *rand.Rand
}

// NewUniform returns a uniform sampler on [min, max).
func NewUniform(min, max float64, rng *rand.Rand) (*Uniform, error) {
	if max < min {
		return nil, fmt.Errorf("stats: uniform max %v < min %v", max, min)
	}
	if rng == nil {
		return nil, fmt.Errorf("stats: uniform requires a random source")
	}
	return &Uniform{Min: min, Max: max, Rand: rng}, nil
}

// Sample implements Sampler.
func (u *Uniform) Sample() float64 {
	return u.Min + (u.Max-u.Min)*u.Rand.Float64()
}

// Normal samples from a normal distribution truncated at zero (negative
// draws are clamped), which is the usual NetEm "delay with jitter" model.
type Normal struct {
	Mean, StdDev float64
	Rand         *rand.Rand
}

// NewNormal returns a truncated-normal sampler.
func NewNormal(mean, stddev float64, rng *rand.Rand) (*Normal, error) {
	if stddev < 0 {
		return nil, fmt.Errorf("stats: normal stddev %v < 0", stddev)
	}
	if rng == nil {
		return nil, fmt.Errorf("stats: normal requires a random source")
	}
	return &Normal{Mean: mean, StdDev: stddev, Rand: rng}, nil
}

// Sample implements Sampler.
func (n *Normal) Sample() float64 {
	v := n.Mean + n.StdDev*n.Rand.NormFloat64()
	if v < 0 {
		return 0
	}
	return v
}

// Exponential samples from an exponential distribution with the given
// mean. It models memoryless inter-arrival times.
type Exponential struct {
	Mean float64
	Rand *rand.Rand
}

// NewExponential returns an exponential sampler with the given mean.
func NewExponential(mean float64, rng *rand.Rand) (*Exponential, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("stats: exponential mean %v <= 0", mean)
	}
	if rng == nil {
		return nil, fmt.Errorf("stats: exponential requires a random source")
	}
	return &Exponential{Mean: mean, Rand: rng}, nil
}

// Sample implements Sampler.
func (e *Exponential) Sample() float64 {
	return e.Rand.ExpFloat64() * e.Mean
}

// Pareto samples from a (type I) Pareto distribution with scale xm > 0 and
// shape alpha > 0. End-to-end network delay is well modelled by a Pareto
// tail (Zhang & He, ICIMP 2007), and the paper's Fig. 9 network uses it
// for the delay process.
type Pareto struct {
	Scale float64 // xm: minimum value
	Shape float64 // alpha: tail index
	Rand  *rand.Rand
}

// NewPareto returns a Pareto sampler.
func NewPareto(scale, shape float64, rng *rand.Rand) (*Pareto, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("stats: pareto scale %v <= 0", scale)
	}
	if shape <= 0 {
		return nil, fmt.Errorf("stats: pareto shape %v <= 0", shape)
	}
	if rng == nil {
		return nil, fmt.Errorf("stats: pareto requires a random source")
	}
	return &Pareto{Scale: scale, Shape: shape, Rand: rng}, nil
}

// Sample implements Sampler via inverse-CDF transform.
func (p *Pareto) Sample() float64 {
	u := p.Rand.Float64()
	// Guard u == 0: the inverse CDF diverges there.
	for u == 0 {
		u = p.Rand.Float64()
	}
	return p.Scale / math.Pow(u, 1/p.Shape)
}

// Mean returns the distribution mean, or +Inf when Shape <= 1.
func (p *Pareto) Mean() float64 {
	if p.Shape <= 1 {
		return math.Inf(1)
	}
	return p.Shape * p.Scale / (p.Shape - 1)
}

// DurationSampler adapts a Sampler whose unit is milliseconds into
// time.Duration draws, the unit used across the simulator.
type DurationSampler struct {
	S Sampler
}

// Sample returns one delay draw.
func (d DurationSampler) Sample() time.Duration {
	ms := d.S.Sample()
	if ms < 0 {
		ms = 0
	}
	return time.Duration(ms * float64(time.Millisecond))
}
