package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0)) }

func TestConstantSampler(t *testing.T) {
	c := Constant{Value: 42}
	for i := 0; i < 5; i++ {
		if got := c.Sample(); got != 42 {
			t.Fatalf("Sample = %v, want 42", got)
		}
	}
}

func TestUniformRangeAndMean(t *testing.T) {
	u, err := NewUniform(10, 20, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	for i := 0; i < 20000; i++ {
		v := u.Sample()
		if v < 10 || v >= 20 {
			t.Fatalf("sample %v outside [10,20)", v)
		}
		s.Add(v)
	}
	if math.Abs(s.Mean()-15) > 0.1 {
		t.Errorf("mean = %v, want ≈15", s.Mean())
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(5, 1, rng(1)); err == nil {
		t.Error("max < min accepted")
	}
	if _, err := NewUniform(1, 5, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestNormalTruncationAndMean(t *testing.T) {
	n, err := NewNormal(100, 15, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	for i := 0; i < 20000; i++ {
		v := n.Sample()
		if v < 0 {
			t.Fatalf("negative sample %v", v)
		}
		s.Add(v)
	}
	if math.Abs(s.Mean()-100) > 1 {
		t.Errorf("mean = %v, want ≈100", s.Mean())
	}
	if math.Abs(s.StdDev()-15) > 1 {
		t.Errorf("sd = %v, want ≈15", s.StdDev())
	}
	// Heavy truncation: mean 1, sd 10 clamps many draws to zero.
	n2, err := NewNormal(1, 10, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if v := n2.Sample(); v < 0 {
			t.Fatalf("negative sample %v after truncation", v)
		}
	}
}

func TestNormalValidation(t *testing.T) {
	if _, err := NewNormal(0, -1, rng(1)); err == nil {
		t.Error("negative stddev accepted")
	}
	if _, err := NewNormal(0, 1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestExponentialMean(t *testing.T) {
	e, err := NewExponential(50, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	for i := 0; i < 50000; i++ {
		s.Add(e.Sample())
	}
	if math.Abs(s.Mean()-50) > 1.5 {
		t.Errorf("mean = %v, want ≈50", s.Mean())
	}
}

func TestExponentialValidation(t *testing.T) {
	if _, err := NewExponential(0, rng(1)); err == nil {
		t.Error("zero mean accepted")
	}
	if _, err := NewExponential(1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestParetoScaleAndMean(t *testing.T) {
	p, err := NewPareto(100, 2.5, rng(5))
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	for i := 0; i < 100000; i++ {
		v := p.Sample()
		if v < 100 {
			t.Fatalf("sample %v below scale 100", v)
		}
		s.Add(v)
	}
	want := p.Mean() // 2.5*100/1.5 ≈ 166.7
	if math.Abs(s.Mean()-want)/want > 0.05 {
		t.Errorf("mean = %v, want ≈%v", s.Mean(), want)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	p, err := NewPareto(1, 1, rng(6))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Mean(), 1) {
		t.Errorf("Mean = %v, want +Inf for shape 1", p.Mean())
	}
}

func TestParetoValidation(t *testing.T) {
	if _, err := NewPareto(0, 1, rng(1)); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := NewPareto(1, 0, rng(1)); err == nil {
		t.Error("zero shape accepted")
	}
	if _, err := NewPareto(1, 1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestDurationSampler(t *testing.T) {
	d := DurationSampler{S: Constant{Value: 100}}
	if got := d.Sample(); got != 100*time.Millisecond {
		t.Errorf("Sample = %v, want 100ms", got)
	}
	neg := DurationSampler{S: Constant{Value: -5}}
	if got := neg.Sample(); got != 0 {
		t.Errorf("negative ms sampled to %v, want 0", got)
	}
}

func TestBernoulliRate(t *testing.T) {
	b, err := NewBernoulli(0.19, rng(7))
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if b.Drop() {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-0.19) > 0.01 {
		t.Errorf("empirical drop rate = %v, want ≈0.19", got)
	}
	if b.Rate() != 0.19 {
		t.Errorf("Rate = %v, want 0.19", b.Rate())
	}
}

func TestBernoulliZeroNeedsNoRand(t *testing.T) {
	b, err := NewBernoulli(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Drop() {
		t.Error("p=0 dropped a packet")
	}
}

func TestBernoulliValidation(t *testing.T) {
	if _, err := NewBernoulli(-0.1, rng(1)); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := NewBernoulli(1.1, rng(1)); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := NewBernoulli(0.5, nil); err == nil {
		t.Error("nil rng with p > 0 accepted")
	}
}

func TestNoLoss(t *testing.T) {
	var nl NoLoss
	if nl.Drop() || nl.Rate() != 0 {
		t.Error("NoLoss dropped or reported nonzero rate")
	}
}

func TestGilbertElliotStationaryRate(t *testing.T) {
	// Simplified Gilbert: lossless Good, lossy Bad.
	g, err := NewGilbertElliot(0.05, 0.20, 1.0, 0.2, rng(8))
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	const n = 300000
	for i := 0; i < n; i++ {
		if g.Drop() {
			drops++
		}
	}
	got := float64(drops) / n
	want := g.Rate() // π_bad·0.8 = (0.05/0.25)·0.8 = 0.16
	if math.Abs(want-0.16) > 1e-9 {
		t.Fatalf("analytic Rate = %v, want 0.16", want)
	}
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical rate = %v, want ≈%v", got, want)
	}
}

// TestGilbertElliotSimplifiedStationaryLoss pins the simplified Gilbert
// model (K=1: lossless Good, H=0: fully lossy Bad) to its closed form:
// every packet in Bad is lost and none in Good, so the long-run loss
// rate is exactly the Bad-state occupancy π_bad = p/(p+r). Both the
// analytic Rate() and the empirical drop frequency over many draws must
// match it across a spread of chain speeds.
func TestGilbertElliotSimplifiedStationaryLoss(t *testing.T) {
	cases := []struct{ p, r float64 }{
		{0.01, 0.09},  // slow chain, long dwell times
		{0.05, 0.20},  // the Fig. 9 regime
		{0.25, 0.30},  // fast chain
		{0.10, 0.10},  // symmetric: half the packets lost
		{0.002, 0.04}, // rare, long outages
	}
	for i, c := range cases {
		g, err := NewGilbertElliot(c.p, c.r, 1.0, 0.0, rng(20+uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		want := c.p / (c.p + c.r)
		if got := g.Rate(); math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v r=%v: Rate() = %v, want p/(p+r) = %v", c.p, c.r, got, want)
		}
		const n = 400000
		drops := 0
		for j := 0; j < n; j++ {
			if g.Drop() {
				drops++
			}
		}
		got := float64(drops) / n
		// Burst correlation inflates the variance of the empirical mean
		// well beyond the Bernoulli se; dwell times scale with 1/p and
		// 1/r, so give the slow chains a proportionally wider band.
		tol := 4 * math.Sqrt(want*(1-want)/n*(2/(c.p+c.r)))
		if math.Abs(got-want) > tol {
			t.Errorf("p=%v r=%v: empirical loss %v, want %v ± %v", c.p, c.r, got, want, tol)
		}
	}
}

func TestGilbertElliotBurstiness(t *testing.T) {
	// Compare mean burst length of consecutive drops against Bernoulli at
	// the same long-run rate: the Markov model must be burstier.
	burstMean := func(m LossModel, n int) float64 {
		bursts, cur, sum := 0, 0, 0
		for i := 0; i < n; i++ {
			if m.Drop() {
				cur++
			} else if cur > 0 {
				bursts++
				sum += cur
				cur = 0
			}
		}
		if bursts == 0 {
			return 0
		}
		return float64(sum) / float64(bursts)
	}
	g, err := NewGilbertElliot(0.02, 0.25, 1.0, 0.0, rng(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBernoulli(g.Rate(), rng(10))
	if err != nil {
		t.Fatal(err)
	}
	gb := burstMean(g, 200000)
	bb := burstMean(b, 200000)
	if gb <= bb {
		t.Errorf("gilbert burst mean %v <= bernoulli %v; model not bursty", gb, bb)
	}
}

func TestGilbertElliotFrozenChain(t *testing.T) {
	g, err := NewGilbertElliot(0, 0, 1, 0, rng(11))
	if err != nil {
		t.Fatal(err)
	}
	if g.Rate() != 0 {
		t.Errorf("frozen Good chain rate = %v, want 0", g.Rate())
	}
	if g.Bad() {
		t.Error("chain started Bad")
	}
}

func TestGilbertElliotValidation(t *testing.T) {
	if _, err := NewGilbertElliot(1.5, 0, 1, 0, rng(1)); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := NewGilbertElliot(0.1, 0.1, 1, 0, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestSummaryKnownValues(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 {
		t.Error("empty summary not zero-valued")
	}
	s.Add(3)
	if s.Variance() != 0 {
		t.Errorf("single-sample variance = %v, want 0", s.Variance())
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Error("single-sample min/max wrong")
	}
}

// Property: Summary matches a direct two-pass computation.
func TestPropertySummaryMatchesTwoPass(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) < 2 {
			return true
		}
		var s Summary
		mean := 0.0
		for _, v := range raw {
			s.Add(float64(v))
			mean += float64(v)
		}
		mean /= float64(len(raw))
		if math.IsNaN(mean) || math.IsInf(mean, 0) {
			return true
		}
		varSum := 0.0
		for _, v := range raw {
			d := float64(v) - mean
			varSum += d * d
		}
		variance := varSum / float64(len(raw)-1)
		scale := math.Max(1, math.Abs(mean))
		if math.Abs(s.Mean()-mean)/scale > 1e-9 {
			return false
		}
		vscale := math.Max(1, variance)
		return math.Abs(s.Variance()-variance)/vscale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	samples := []float64{9, 1, 3, 7, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 3}, {0.5, 5}, {0.75, 7}, {1, 9}, {0.125, 2},
	}
	for _, tc := range tests {
		got, err := Quantile(samples, tc.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tc.q, err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Input must not be reordered.
	if samples[0] != 9 {
		t.Error("Quantile mutated its input")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Quantile(samples, 1.5); err == nil {
		t.Error("q > 1 accepted")
	}
	one, err := Quantile([]float64{4}, 0.99)
	if err != nil || one != 4 {
		t.Errorf("single-sample quantile = %v, %v", one, err)
	}
}

func TestMAEAndRMSE(t *testing.T) {
	pred := []float64{0.1, 0.5, 0.9}
	truth := []float64{0.2, 0.5, 0.6}
	mae, err := MAE(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mae-(0.1+0+0.3)/3) > 1e-12 {
		t.Errorf("MAE = %v", mae)
	}
	rmse, err := RMSE(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((0.01 + 0 + 0.09) / 3)
	if math.Abs(rmse-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", rmse, want)
	}
	if _, err := MAE(pred, truth[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(v)
	}
	if h.Underflow != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Bins[1])
	}
	if h.Bins[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Bins[4])
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(10, 0, 5); err == nil {
		t.Error("hi <= lo accepted")
	}
}

func TestDeterminism(t *testing.T) {
	draw := func() []float64 {
		p, err := NewPareto(50, 2, rng(99))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 10)
		for i := range out {
			out[i] = p.Sample()
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkGilbertElliotDrop(b *testing.B) {
	g, err := NewGilbertElliot(0.05, 0.2, 1, 0.2, rng(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Drop()
	}
}

func BenchmarkParetoSample(b *testing.B) {
	p, err := NewPareto(100, 2.5, rng(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Sample()
	}
}

func TestSummaryMerge(t *testing.T) {
	var all, a, b Summary
	for i, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		all.Add(v)
		if i < 3 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.N() != all.N() || math.Abs(a.Mean()-all.Mean()) > 1e-12 {
		t.Errorf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-12 {
		t.Errorf("merged variance = %v, want %v", a.Variance(), all.Variance())
	}
	if a.Min() != 1 || a.Max() != 9 {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	// Merging into/with empty summaries.
	var empty Summary
	empty.Merge(a)
	if empty.N() != a.N() {
		t.Error("merge into empty failed")
	}
	before := a.N()
	a.Merge(Summary{})
	if a.N() != before {
		t.Error("merging empty changed the summary")
	}
}
