package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/mean/variance/min/max online (Welford's
// algorithm), so hot simulator paths can record samples without storing
// them.
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of samples recorded.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the running mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// samples).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest sample (0 with no samples).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() float64 { return s.max }

// Merge folds another summary into this one (Chan et al.'s parallel
// variance combination), used when aggregating per-producer results.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n1, n2 := float64(s.n), float64(o.n)
	delta := o.mean - s.mean
	total := n1 + n2
	s.m2 += o.m2 + delta*delta*n1*n2/total
	s.mean += delta * n2 / total
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// String renders the summary for logs and experiment reports.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the given samples using
// linear interpolation. The input slice is not modified.
func Quantile(samples []float64, q float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty sample set")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile q = %v outside [0,1]", q)
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MAE returns the mean absolute error between prediction and truth slices.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("stats: MAE length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("stats: MAE of empty slices")
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - truth[i])
	}
	return sum / float64(len(pred)), nil
}

// RMSE returns the root mean squared error between prediction and truth.
func RMSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("stats: RMSE length mismatch %d vs %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("stats: RMSE of empty slices")
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}

// Histogram counts samples into fixed-width bins over [Lo, Hi); samples
// outside the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Bins      []uint64
	Underflow uint64
	Overflow  uint64
}

// NewHistogram creates a histogram with n equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bin, got %d", n)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram hi %v <= lo %v", hi, lo)
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]uint64, n)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i == len(h.Bins) { // float rounding at the upper edge
			i--
		}
		h.Bins[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range
// ones.
func (h *Histogram) Total() uint64 {
	t := h.Underflow + h.Overflow
	for _, b := range h.Bins {
		t += b
	}
	return t
}
