package figures

import (
	"testing"

	"kafkarel/internal/features"
	"kafkarel/internal/testbed"
)

// The execution-layer contract: for a fixed seed every figure is
// byte-identical (a) across worker counts and (b) to the pre-refactor
// sequential path, which ran testbed.Run in a plain loop with seed
// o.Seed + idx*2654435761. (b) is reproduced literally below so a
// regression in either the seed derivation or the result ordering
// fails loudly.

const detMessages = 200

func detOptions(workers int) Options {
	return Options{Messages: detMessages, Seed: 11, Workers: workers}
}

// sequentialRun is the pre-refactor experiment runner, kept verbatim as
// the reference.
func sequentialRun(v features.Vector, o Options, idx int) (testbed.Result, error) {
	return testbed.Run(testbed.Experiment{
		Features:   v,
		Messages:   o.messages(),
		Seed:       o.Seed + uint64(idx)*2654435761,
		MaxSimTime: maxSimTime(o.messages()),
	})
}

func TestFig4DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	// Pre-refactor sequential reference: sizes outer, semantics inner,
	// experiment index counting from 0.
	o := detOptions(1)
	var want []Fig4Point
	i := 0
	for _, m := range Fig4Sizes {
		for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
			res, err := sequentialRun(Fig4Vector(m, sem), o, i)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, Fig4Point{MessageSize: m, Semantics: sem, Pl: res.Pl, Pd: res.Pd})
			i++
		}
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := Fig4(detOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("workers=%d: point %d = %+v, sequential reference %+v",
					workers, j, got[j], want[j])
			}
		}
	}
}

func TestFig5DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	o := detOptions(1)
	var want []Fig5Point
	i := 0
	for _, to := range Fig5Timeouts {
		for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
			res, err := sequentialRun(Fig5Vector(to, sem), o, 100+i)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, Fig5Point{Timeout: to, Semantics: sem, Pl: res.Pl})
			i++
		}
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := Fig5(detOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("workers=%d: point %d = %+v, want %+v", workers, j, got[j], want[j])
			}
		}
	}
}

func TestFig6DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	o := detOptions(1)
	var want []Fig6Point
	for i, delta := range Fig6Intervals {
		res, err := sequentialRun(Fig6Vector(delta), o, 200+i)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, Fig6Point{PollInterval: delta, Pl: res.Pl})
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := Fig6(detOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("workers=%d: point %d = %+v, want %+v", workers, j, got[j], want[j])
			}
		}
	}
}

func TestFig7DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	o := detOptions(1)
	var want []Fig7Point
	i := 0
	for _, b := range Fig7Batches {
		for _, l := range Fig7Losses {
			for _, sem := range []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce} {
				res, err := sequentialRun(Fig7Vector(l, b, sem), o, 300+i)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, Fig7Point{LossRate: l, BatchSize: b, Semantics: sem, Pl: res.Pl})
				i++
			}
		}
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := Fig7(detOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("workers=%d: point %d = %+v, want %+v", workers, j, got[j], want[j])
			}
		}
	}
}

func TestFig8DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	o := detOptions(1)
	var want []Fig8Point
	i := 0
	for _, l := range Fig8Losses {
		for _, b := range Fig8Batches {
			res, err := sequentialRun(Fig8Vector(b, l), o, 600+i)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, Fig8Point{BatchSize: b, LossRate: l, Pd: res.Pd, Pl: res.Pl})
			i++
		}
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := Fig8(detOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("workers=%d: point %d = %+v, want %+v", workers, j, got[j], want[j])
			}
		}
	}
}
