// Package figures pins down the exact experiment behind every figure and
// table in the paper's evaluation, so the CLI (cmd/repro), the benchmark
// harness (bench_test.go) and the shape tests all regenerate the same
// series from one definition. EXPERIMENTS.md records paper-vs-measured
// values for each.
package figures

import (
	"context"
	"fmt"
	"time"

	"kafkarel/internal/core"
	"kafkarel/internal/exprun"
	"kafkarel/internal/features"
	"kafkarel/internal/netem"
	"kafkarel/internal/producer"
	"kafkarel/internal/sweep"
	"kafkarel/internal/testbed"
)

// Options applies to every figure run.
type Options struct {
	// Messages per experiment point (default 20000).
	Messages int
	// Seed drives all randomness. Every experiment's seed is derived from
	// Seed and the experiment's position in the figure, so regenerated
	// series are identical for any Workers setting.
	Seed uint64
	// Workers bounds the experiment worker pool (<= 0: GOMAXPROCS).
	Workers int
	// Context, when non-nil, cancels in-flight experiment batches.
	Context context.Context
	// Progress, when non-nil, is called once per finished experiment.
	Progress func(done, total int)
}

func (o Options) messages() int {
	if o.Messages > 0 {
		return o.Messages
	}
	return 20000
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// seedStride separates the per-experiment seed streams of a figure (the
// historical derivation, kept so regenerated series stay byte-identical
// to the sequential original; each figure offsets its experiment indices
// into a disjoint range).
const seedStride = 2654435761

// maxSimTime bounds any single experiment; the slowest points (1000-byte
// messages at ~1 msg/s) need hours of virtual time for large counts.
func maxSimTime(messages int) time.Duration {
	d := time.Duration(messages) * time.Second // ≥1 msg/s worst case
	if d < 30*time.Minute {
		d = 30 * time.Minute
	}
	return d
}

// point is one experiment of a figure: a feature vector plus the seed
// index it has always used.
type point struct {
	v   features.Vector
	idx int
}

// runBatch executes a figure's experiments on the exprun pool and
// returns the results in point order; label renders the error context
// for a failed point.
func runBatch(o Options, points []point, label func(p point) string) ([]testbed.Result, error) {
	seedAt := exprun.LinearSeeds(o.Seed, seedStride)
	return exprun.Map(o.ctx(), points,
		func(ctx context.Context, _ int, p point) (testbed.Result, error) {
			res, err := testbed.RunCtx(ctx, testbed.Experiment{
				Features:   p.v,
				Messages:   o.messages(),
				Seed:       seedAt(p.idx),
				MaxSimTime: maxSimTime(o.messages()),
			})
			if err != nil {
				return testbed.Result{}, fmt.Errorf("figures: %s: %w", label(p), err)
			}
			return res, nil
		},
		exprun.Options{Workers: o.Workers, Progress: o.Progress})
}

// --- Fig. 4 ---------------------------------------------------------------

// Fig4Point is one marker of Fig. 4: P_l over message size M for one
// delivery semantics, at D = 100 ms and L = 19 %.
type Fig4Point struct {
	MessageSize int
	Semantics   int
	Pl          float64
	Pd          float64
}

// Fig4Sizes is the swept message-size axis (the paper sweeps 50-1000 B).
var Fig4Sizes = []int{50, 100, 200, 300, 500, 750, 1000}

// Fig4Vector returns the experiment definition for one Fig. 4 point.
func Fig4Vector(messageSize, semantics int) features.Vector {
	return features.Vector{
		MessageSize:    messageSize,
		Timeliness:     5 * time.Second,
		DelayMs:        100,
		LossRate:       0.19,
		Semantics:      semantics,
		BatchSize:      1,
		PollInterval:   0,
		MessageTimeout: 1500 * time.Millisecond,
	}
}

// Fig4 regenerates the message-size study.
func Fig4(o Options) ([]Fig4Point, error) {
	var points []point
	sems := []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce}
	for _, m := range Fig4Sizes {
		for _, sem := range sems {
			points = append(points, point{v: Fig4Vector(m, sem), idx: len(points)})
		}
	}
	results, err := runBatch(o, points, func(p point) string {
		return fmt.Sprintf("fig4 M=%d sem=%d", p.v.MessageSize, p.v.Semantics)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig4Point, len(points))
	for i, p := range points {
		out[i] = Fig4Point{MessageSize: p.v.MessageSize, Semantics: p.v.Semantics,
			Pl: results[i].Pl, Pd: results[i].Pd}
	}
	return out, nil
}

// --- Fig. 5 ---------------------------------------------------------------

// Fig5Point is one marker of Fig. 5: P_l over the message timeout T_o at
// full load with no injected faults.
type Fig5Point struct {
	Timeout   time.Duration
	Semantics int
	Pl        float64
}

// Fig5Timeouts is the swept T_o axis.
var Fig5Timeouts = []time.Duration{
	250 * time.Millisecond, 500 * time.Millisecond, 750 * time.Millisecond,
	1000 * time.Millisecond, 1500 * time.Millisecond, 2000 * time.Millisecond,
	2500 * time.Millisecond,
}

// Fig5Vector returns the experiment definition for one Fig. 5 point.
func Fig5Vector(timeout time.Duration, semantics int) features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        10,
		LossRate:       0,
		Semantics:      semantics,
		BatchSize:      1,
		PollInterval:   0,
		MessageTimeout: timeout,
	}
}

// Fig5 regenerates the message-timeout study.
func Fig5(o Options) ([]Fig5Point, error) {
	var points []point
	sems := []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce}
	for _, to := range Fig5Timeouts {
		for _, sem := range sems {
			points = append(points, point{v: Fig5Vector(to, sem), idx: 100 + len(points)})
		}
	}
	results, err := runBatch(o, points, func(p point) string {
		return fmt.Sprintf("fig5 To=%v sem=%d", p.v.MessageTimeout, p.v.Semantics)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig5Point, len(points))
	for i, p := range points {
		out[i] = Fig5Point{Timeout: p.v.MessageTimeout, Semantics: p.v.Semantics, Pl: results[i].Pl}
	}
	return out, nil
}

// --- Fig. 6 ---------------------------------------------------------------

// Fig6Point is one marker of Fig. 6: P_l over the polling interval δ at
// T_o = 500 ms with no injected faults, at-most-once.
type Fig6Point struct {
	PollInterval time.Duration
	Pl           float64
}

// Fig6Intervals is the swept δ axis.
var Fig6Intervals = []time.Duration{
	0, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond,
	45 * time.Millisecond, 60 * time.Millisecond, 75 * time.Millisecond,
	90 * time.Millisecond,
}

// Fig6Vector returns the experiment definition for one Fig. 6 point.
func Fig6Vector(delta time.Duration) features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        10,
		LossRate:       0,
		Semantics:      features.SemanticsAtMostOnce,
		BatchSize:      1,
		PollInterval:   delta,
		MessageTimeout: 500 * time.Millisecond,
	}
}

// Fig6 regenerates the polling-interval study.
func Fig6(o Options) ([]Fig6Point, error) {
	var points []point
	for i, delta := range Fig6Intervals {
		points = append(points, point{v: Fig6Vector(delta), idx: 200 + i})
	}
	results, err := runBatch(o, points, func(p point) string {
		return fmt.Sprintf("fig6 δ=%v", p.v.PollInterval)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig6Point, len(points))
	for i, p := range points {
		out[i] = Fig6Point{PollInterval: p.v.PollInterval, Pl: results[i].Pl}
	}
	return out, nil
}

// --- Fig. 7 ---------------------------------------------------------------

// Fig7Point is one marker of Fig. 7: P_l over the packet loss rate L for
// one batch size and semantics.
type Fig7Point struct {
	LossRate  float64
	BatchSize int
	Semantics int
	Pl        float64
}

// Fig7Losses and Fig7Batches are the swept axes (the paper sweeps
// L ∈ [0, 50 %] and B ∈ [1, 10]).
var (
	Fig7Losses  = []float64{0, 0.05, 0.08, 0.10, 0.13, 0.16, 0.20, 0.25, 0.30, 0.40, 0.50}
	Fig7Batches = []int{1, 2, 5, 10}
)

// Fig7Vector returns the experiment definition for one Fig. 7 point.
func Fig7Vector(loss float64, batch, semantics int) features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        10,
		LossRate:       loss,
		Semantics:      semantics,
		BatchSize:      batch,
		PollInterval:   0,
		MessageTimeout: 500 * time.Millisecond,
	}
}

// Fig7 regenerates the batching-under-loss study.
func Fig7(o Options) ([]Fig7Point, error) {
	var points []point
	sems := []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce}
	for _, b := range Fig7Batches {
		for _, l := range Fig7Losses {
			for _, sem := range sems {
				points = append(points, point{v: Fig7Vector(l, b, sem), idx: 300 + len(points)})
			}
		}
	}
	results, err := runBatch(o, points, func(p point) string {
		return fmt.Sprintf("fig7 L=%v B=%d sem=%d", p.v.LossRate, p.v.BatchSize, p.v.Semantics)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig7Point, len(points))
	for i, p := range points {
		out[i] = Fig7Point{LossRate: p.v.LossRate, BatchSize: p.v.BatchSize,
			Semantics: p.v.Semantics, Pl: results[i].Pl}
	}
	return out, nil
}

// --- Fig. 8 ---------------------------------------------------------------

// Fig8Point is one marker of Fig. 8: P_d over the batch size B under
// at-least-once delivery for one loss rate.
type Fig8Point struct {
	BatchSize int
	LossRate  float64
	Pd        float64
	Pl        float64
}

// Fig8Batches and Fig8Losses are the swept axes.
var (
	Fig8Batches = []int{1, 2, 3, 4, 6, 8, 10}
	Fig8Losses  = []float64{0.05, 0.10, 0.15, 0.20}
)

// Fig8Vector returns the experiment definition for one Fig. 8 point. The
// delivery budget is generous (3 s) so that spurious-timeout retries —
// the Case 5 duplicate mechanism — can happen at all.
func Fig8Vector(batch int, loss float64) features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        100,
		LossRate:       loss,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      batch,
		PollInterval:   0,
		MessageTimeout: 3 * time.Second,
	}
}

// Fig8 regenerates the duplicate study.
func Fig8(o Options) ([]Fig8Point, error) {
	var points []point
	for _, l := range Fig8Losses {
		for _, b := range Fig8Batches {
			points = append(points, point{v: Fig8Vector(b, l), idx: 600 + len(points)})
		}
	}
	results, err := runBatch(o, points, func(p point) string {
		return fmt.Sprintf("fig8 B=%d L=%v", p.v.BatchSize, p.v.LossRate)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig8Point, len(points))
	for i, p := range points {
		out[i] = Fig8Point{BatchSize: p.v.BatchSize, LossRate: p.v.LossRate,
			Pd: results[i].Pd, Pl: results[i].Pl}
	}
	return out, nil
}

// --- Fig. 9 ---------------------------------------------------------------

// Fig9 generates the dynamic-configuration experiment's network trace
// series (Pareto-distributed delay, Gilbert-Elliot loss).
func Fig9(seed uint64) ([]netem.Point, error) {
	trace, err := netem.DefaultTraceSpec().Generate(seed)
	if err != nil {
		return nil, fmt.Errorf("figures: fig9: %w", err)
	}
	return trace.Series(), nil
}

// --- Table I --------------------------------------------------------------

// Table1Row is one message-state case with its observed frequency. It
// is the producer package's unified tally row; the alias keeps older
// call sites compiling.
type Table1Row = producer.CaseCount

// Table1Result is the empirical Table I: how often each case occurred in
// a retry-friendly faulted run, with the consumer-side duplicate count
// resolving Case 4 vs Case 5.
type Table1Result struct {
	Rows []Table1Row
	// Case5 is the consumer-observed duplicate count (messages persisted
	// more than once), which the producer alone cannot distinguish from
	// Case 4.
	Case5 uint64
	Total uint64
}

// Table1 classifies message outcomes under a moderately faulted network
// with retries enabled, exercising every Fig. 2 transition.
func Table1(o Options) (Table1Result, error) {
	v := features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        100,
		LossRate:       0.15,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      1,
		PollInterval:   20 * time.Millisecond,
		MessageTimeout: 4 * time.Second,
	}
	res, err := testbed.Run(testbed.Experiment{
		Features:       v,
		Messages:       o.messages(),
		Seed:           o.Seed + 77,
		MaxSimTime:     maxSimTime(o.messages()),
		RequestTimeout: 1500 * time.Millisecond,
		MaxRetries:     5,
	})
	if err != nil {
		return Table1Result{}, fmt.Errorf("figures: table1: %w", err)
	}
	return Table1Result{
		Rows:  res.Producer.Cases(),
		Total: res.Producer.Total,
		Case5: res.Report.NDuplicated,
	}, nil
}

// --- ANN accuracy (the Figs. 4-6 predicted-vs-measured overlays) -----------

// AccuracyResult reports the prediction-model evaluation: held-out MAE
// (the paper reports < 0.02) and sample predicted-vs-measured pairs.
type AccuracyResult struct {
	Metrics core.Metrics
	// Pairs are held-out (measured, predicted) P_l samples for the
	// overlay plots.
	Pairs []AccuracyPair
}

// AccuracyPair is one overlay marker.
type AccuracyPair struct {
	X           features.Vector
	MeasuredPl  float64
	PredictedPl float64
	MeasuredPd  float64
	PredictedPd float64
}

// Accuracy collects a reduced Fig. 3 sweep, trains the predictor, and
// evaluates it on the held-out split.
func Accuracy(o Options) (AccuracyResult, error) {
	grid := append(sweep.NormalGrid(), sweep.AbnormalGrid()...)
	ds, err := sweep.CollectContext(o.ctx(), grid, sweep.Options{
		Messages:   o.messages() / 4,
		Seed:       o.Seed + 1,
		MaxSimTime: 20 * time.Minute,
		Workers:    o.Workers,
		Progress:   o.Progress,
	})
	if err != nil {
		return AccuracyResult{}, fmt.Errorf("figures: accuracy sweep: %w", err)
	}
	train, test, err := ds.Split(0.2, o.Seed)
	if err != nil {
		return AccuracyResult{}, fmt.Errorf("figures: accuracy split: %w", err)
	}
	pred, metrics, err := core.Train(train, core.TrainConfig{Seed: o.Seed, TargetMAE: 0.01})
	if err != nil {
		return AccuracyResult{}, fmt.Errorf("figures: accuracy train: %w", err)
	}
	out := AccuracyResult{Metrics: metrics}
	for _, s := range test {
		p, err := pred.Predict(s.X)
		if err != nil {
			continue // semantics absent from the training split
		}
		out.Pairs = append(out.Pairs, AccuracyPair{
			X:           s.X,
			MeasuredPl:  s.Pl,
			PredictedPl: p.Pl,
			MeasuredPd:  s.Pd,
			PredictedPd: p.Pd,
		})
	}
	if len(out.Pairs) == 0 {
		return AccuracyResult{}, fmt.Errorf("figures: accuracy produced no held-out pairs")
	}
	return out, nil
}

// HeldOutMAE computes the pooled P_l MAE over the overlay pairs.
func (r AccuracyResult) HeldOutMAE() float64 {
	if len(r.Pairs) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range r.Pairs {
		d := p.MeasuredPl - p.PredictedPl
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(r.Pairs))
}
