// Package figures pins down the exact experiment behind every figure and
// table in the paper's evaluation, so the CLI (cmd/repro), the benchmark
// harness (bench_test.go) and the shape tests all regenerate the same
// series from one definition. EXPERIMENTS.md records paper-vs-measured
// values for each.
package figures

import (
	"fmt"
	"time"

	"kafkarel/internal/core"
	"kafkarel/internal/features"
	"kafkarel/internal/netem"
	"kafkarel/internal/producer"
	"kafkarel/internal/sweep"
	"kafkarel/internal/testbed"
)

// Options applies to every figure run.
type Options struct {
	// Messages per experiment point (default 20000).
	Messages int
	// Seed drives all randomness.
	Seed uint64
	// Progress, when non-nil, is called once per finished experiment.
	Progress func(done, total int)
}

func (o Options) messages() int {
	if o.Messages > 0 {
		return o.Messages
	}
	return 20000
}

// maxSimTime bounds any single experiment; the slowest points (1000-byte
// messages at ~1 msg/s) need hours of virtual time for large counts.
func maxSimTime(messages int) time.Duration {
	d := time.Duration(messages) * time.Second // ≥1 msg/s worst case
	if d < 30*time.Minute {
		d = 30 * time.Minute
	}
	return d
}

func run(v features.Vector, o Options, idx int) (testbed.Result, error) {
	return testbed.Run(testbed.Experiment{
		Features:   v,
		Messages:   o.messages(),
		Seed:       o.Seed + uint64(idx)*2654435761,
		MaxSimTime: maxSimTime(o.messages()),
	})
}

// --- Fig. 4 ---------------------------------------------------------------

// Fig4Point is one marker of Fig. 4: P_l over message size M for one
// delivery semantics, at D = 100 ms and L = 19 %.
type Fig4Point struct {
	MessageSize int
	Semantics   int
	Pl          float64
	Pd          float64
}

// Fig4Sizes is the swept message-size axis (the paper sweeps 50-1000 B).
var Fig4Sizes = []int{50, 100, 200, 300, 500, 750, 1000}

// Fig4Vector returns the experiment definition for one Fig. 4 point.
func Fig4Vector(messageSize, semantics int) features.Vector {
	return features.Vector{
		MessageSize:    messageSize,
		Timeliness:     5 * time.Second,
		DelayMs:        100,
		LossRate:       0.19,
		Semantics:      semantics,
		BatchSize:      1,
		PollInterval:   0,
		MessageTimeout: 1500 * time.Millisecond,
	}
}

// Fig4 regenerates the message-size study.
func Fig4(o Options) ([]Fig4Point, error) {
	var out []Fig4Point
	sems := []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce}
	total := len(Fig4Sizes) * len(sems)
	i := 0
	for _, m := range Fig4Sizes {
		for _, sem := range sems {
			res, err := run(Fig4Vector(m, sem), o, i)
			if err != nil {
				return nil, fmt.Errorf("figures: fig4 M=%d sem=%d: %w", m, sem, err)
			}
			out = append(out, Fig4Point{MessageSize: m, Semantics: sem, Pl: res.Pl, Pd: res.Pd})
			i++
			if o.Progress != nil {
				o.Progress(i, total)
			}
		}
	}
	return out, nil
}

// --- Fig. 5 ---------------------------------------------------------------

// Fig5Point is one marker of Fig. 5: P_l over the message timeout T_o at
// full load with no injected faults.
type Fig5Point struct {
	Timeout   time.Duration
	Semantics int
	Pl        float64
}

// Fig5Timeouts is the swept T_o axis.
var Fig5Timeouts = []time.Duration{
	250 * time.Millisecond, 500 * time.Millisecond, 750 * time.Millisecond,
	1000 * time.Millisecond, 1500 * time.Millisecond, 2000 * time.Millisecond,
	2500 * time.Millisecond,
}

// Fig5Vector returns the experiment definition for one Fig. 5 point.
func Fig5Vector(timeout time.Duration, semantics int) features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        10,
		LossRate:       0,
		Semantics:      semantics,
		BatchSize:      1,
		PollInterval:   0,
		MessageTimeout: timeout,
	}
}

// Fig5 regenerates the message-timeout study.
func Fig5(o Options) ([]Fig5Point, error) {
	var out []Fig5Point
	sems := []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce}
	total := len(Fig5Timeouts) * len(sems)
	i := 0
	for _, to := range Fig5Timeouts {
		for _, sem := range sems {
			res, err := run(Fig5Vector(to, sem), o, 100+i)
			if err != nil {
				return nil, fmt.Errorf("figures: fig5 To=%v sem=%d: %w", to, sem, err)
			}
			out = append(out, Fig5Point{Timeout: to, Semantics: sem, Pl: res.Pl})
			i++
			if o.Progress != nil {
				o.Progress(i, total)
			}
		}
	}
	return out, nil
}

// --- Fig. 6 ---------------------------------------------------------------

// Fig6Point is one marker of Fig. 6: P_l over the polling interval δ at
// T_o = 500 ms with no injected faults, at-most-once.
type Fig6Point struct {
	PollInterval time.Duration
	Pl           float64
}

// Fig6Intervals is the swept δ axis.
var Fig6Intervals = []time.Duration{
	0, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond,
	45 * time.Millisecond, 60 * time.Millisecond, 75 * time.Millisecond,
	90 * time.Millisecond,
}

// Fig6Vector returns the experiment definition for one Fig. 6 point.
func Fig6Vector(delta time.Duration) features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        10,
		LossRate:       0,
		Semantics:      features.SemanticsAtMostOnce,
		BatchSize:      1,
		PollInterval:   delta,
		MessageTimeout: 500 * time.Millisecond,
	}
}

// Fig6 regenerates the polling-interval study.
func Fig6(o Options) ([]Fig6Point, error) {
	var out []Fig6Point
	for i, delta := range Fig6Intervals {
		res, err := run(Fig6Vector(delta), o, 200+i)
		if err != nil {
			return nil, fmt.Errorf("figures: fig6 δ=%v: %w", delta, err)
		}
		out = append(out, Fig6Point{PollInterval: delta, Pl: res.Pl})
		if o.Progress != nil {
			o.Progress(i+1, len(Fig6Intervals))
		}
	}
	return out, nil
}

// --- Fig. 7 ---------------------------------------------------------------

// Fig7Point is one marker of Fig. 7: P_l over the packet loss rate L for
// one batch size and semantics.
type Fig7Point struct {
	LossRate  float64
	BatchSize int
	Semantics int
	Pl        float64
}

// Fig7Losses and Fig7Batches are the swept axes (the paper sweeps
// L ∈ [0, 50 %] and B ∈ [1, 10]).
var (
	Fig7Losses  = []float64{0, 0.05, 0.08, 0.10, 0.13, 0.16, 0.20, 0.25, 0.30, 0.40, 0.50}
	Fig7Batches = []int{1, 2, 5, 10}
)

// Fig7Vector returns the experiment definition for one Fig. 7 point.
func Fig7Vector(loss float64, batch, semantics int) features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        10,
		LossRate:       loss,
		Semantics:      semantics,
		BatchSize:      batch,
		PollInterval:   0,
		MessageTimeout: 500 * time.Millisecond,
	}
}

// Fig7 regenerates the batching-under-loss study.
func Fig7(o Options) ([]Fig7Point, error) {
	var out []Fig7Point
	sems := []int{features.SemanticsAtMostOnce, features.SemanticsAtLeastOnce}
	total := len(Fig7Losses) * len(Fig7Batches) * len(sems)
	i := 0
	for _, b := range Fig7Batches {
		for _, l := range Fig7Losses {
			for _, sem := range sems {
				res, err := run(Fig7Vector(l, b, sem), o, 300+i)
				if err != nil {
					return nil, fmt.Errorf("figures: fig7 L=%v B=%d sem=%d: %w", l, b, sem, err)
				}
				out = append(out, Fig7Point{LossRate: l, BatchSize: b, Semantics: sem, Pl: res.Pl})
				i++
				if o.Progress != nil {
					o.Progress(i, total)
				}
			}
		}
	}
	return out, nil
}

// --- Fig. 8 ---------------------------------------------------------------

// Fig8Point is one marker of Fig. 8: P_d over the batch size B under
// at-least-once delivery for one loss rate.
type Fig8Point struct {
	BatchSize int
	LossRate  float64
	Pd        float64
	Pl        float64
}

// Fig8Batches and Fig8Losses are the swept axes.
var (
	Fig8Batches = []int{1, 2, 3, 4, 6, 8, 10}
	Fig8Losses  = []float64{0.05, 0.10, 0.15, 0.20}
)

// Fig8Vector returns the experiment definition for one Fig. 8 point. The
// delivery budget is generous (3 s) so that spurious-timeout retries —
// the Case 5 duplicate mechanism — can happen at all.
func Fig8Vector(batch int, loss float64) features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        100,
		LossRate:       loss,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      batch,
		PollInterval:   0,
		MessageTimeout: 3 * time.Second,
	}
}

// Fig8 regenerates the duplicate study.
func Fig8(o Options) ([]Fig8Point, error) {
	var out []Fig8Point
	total := len(Fig8Batches) * len(Fig8Losses)
	i := 0
	for _, l := range Fig8Losses {
		for _, b := range Fig8Batches {
			res, err := run(Fig8Vector(b, l), o, 600+i)
			if err != nil {
				return nil, fmt.Errorf("figures: fig8 B=%d L=%v: %w", b, l, err)
			}
			out = append(out, Fig8Point{BatchSize: b, LossRate: l, Pd: res.Pd, Pl: res.Pl})
			i++
			if o.Progress != nil {
				o.Progress(i, total)
			}
		}
	}
	return out, nil
}

// --- Fig. 9 ---------------------------------------------------------------

// Fig9 generates the dynamic-configuration experiment's network trace
// series (Pareto-distributed delay, Gilbert-Elliot loss).
func Fig9(seed uint64) ([]netem.Point, error) {
	trace, err := netem.DefaultTraceSpec().Generate(seed)
	if err != nil {
		return nil, fmt.Errorf("figures: fig9: %w", err)
	}
	return trace.Series(), nil
}

// --- Table I --------------------------------------------------------------

// Table1Row is one message-state case with its observed frequency.
type Table1Row struct {
	Case  producer.Case
	Count uint64
	Share float64
}

// Table1Result is the empirical Table I: how often each case occurred in
// a retry-friendly faulted run, with the consumer-side duplicate count
// resolving Case 4 vs Case 5.
type Table1Result struct {
	Rows []Table1Row
	// Case5 is the consumer-observed duplicate count (messages persisted
	// more than once), which the producer alone cannot distinguish from
	// Case 4.
	Case5 uint64
	Total uint64
}

// Table1 classifies message outcomes under a moderately faulted network
// with retries enabled, exercising every Fig. 2 transition.
func Table1(o Options) (Table1Result, error) {
	v := features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        100,
		LossRate:       0.15,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      1,
		PollInterval:   20 * time.Millisecond,
		MessageTimeout: 4 * time.Second,
	}
	res, err := testbed.Run(testbed.Experiment{
		Features:       v,
		Messages:       o.messages(),
		Seed:           o.Seed + 77,
		MaxSimTime:     maxSimTime(o.messages()),
		RequestTimeout: 1500 * time.Millisecond,
		MaxRetries:     5,
	})
	if err != nil {
		return Table1Result{}, fmt.Errorf("figures: table1: %w", err)
	}
	out := Table1Result{Total: res.Producer.Total, Case5: res.Report.NDuplicated}
	for _, c := range []producer.Case{producer.Case1, producer.Case2, producer.Case3, producer.Case4} {
		n := res.Producer.ByCase[c]
		out.Rows = append(out.Rows, Table1Row{
			Case:  c,
			Count: n,
			Share: float64(n) / float64(res.Producer.Total),
		})
	}
	return out, nil
}

// --- ANN accuracy (the Figs. 4-6 predicted-vs-measured overlays) -----------

// AccuracyResult reports the prediction-model evaluation: held-out MAE
// (the paper reports < 0.02) and sample predicted-vs-measured pairs.
type AccuracyResult struct {
	Metrics core.Metrics
	// Pairs are held-out (measured, predicted) P_l samples for the
	// overlay plots.
	Pairs []AccuracyPair
}

// AccuracyPair is one overlay marker.
type AccuracyPair struct {
	X           features.Vector
	MeasuredPl  float64
	PredictedPl float64
	MeasuredPd  float64
	PredictedPd float64
}

// Accuracy collects a reduced Fig. 3 sweep, trains the predictor, and
// evaluates it on the held-out split.
func Accuracy(o Options) (AccuracyResult, error) {
	grid := append(sweep.NormalGrid(), sweep.AbnormalGrid()...)
	ds, err := sweep.Collect(grid, sweep.Options{
		Messages:   o.messages() / 4,
		Seed:       o.Seed + 1,
		MaxSimTime: 20 * time.Minute,
		Progress:   o.Progress,
	})
	if err != nil {
		return AccuracyResult{}, fmt.Errorf("figures: accuracy sweep: %w", err)
	}
	train, test, err := ds.Split(0.2, o.Seed)
	if err != nil {
		return AccuracyResult{}, fmt.Errorf("figures: accuracy split: %w", err)
	}
	pred, metrics, err := core.Train(train, core.TrainConfig{Seed: o.Seed, TargetMAE: 0.01})
	if err != nil {
		return AccuracyResult{}, fmt.Errorf("figures: accuracy train: %w", err)
	}
	out := AccuracyResult{Metrics: metrics}
	for _, s := range test {
		p, err := pred.Predict(s.X)
		if err != nil {
			continue // semantics absent from the training split
		}
		out.Pairs = append(out.Pairs, AccuracyPair{
			X:           s.X,
			MeasuredPl:  s.Pl,
			PredictedPl: p.Pl,
			MeasuredPd:  s.Pd,
			PredictedPd: p.Pd,
		})
	}
	if len(out.Pairs) == 0 {
		return AccuracyResult{}, fmt.Errorf("figures: accuracy produced no held-out pairs")
	}
	return out, nil
}

// HeldOutMAE computes the pooled P_l MAE over the overlay pairs.
func (r AccuracyResult) HeldOutMAE() float64 {
	if len(r.Pairs) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range r.Pairs {
		d := p.MeasuredPl - p.PredictedPl
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(r.Pairs))
}
