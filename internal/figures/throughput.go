package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"kafkarel/internal/exprun"
	"kafkarel/internal/features"
	"kafkarel/internal/testbed"
)

// The throughput family is an extension beyond the paper's figures: the
// paper measures reliability (P_l, P_d) per configuration and leaves
// throughput inside the KPI's predicted φ; these two series measure it
// directly on the testbed — once over the batch size on a single
// producer, once over the partition count on a fleet — so the
// batching/partitioning trade-off has an empirical curve to check the
// performance model against. EXPERIMENTS.md records the measured
// series.

// ThroughputBatchPoint is one marker of the throughput-vs-batch-size
// series: delivered messages per simulated second for one batch size B
// under mild loss, at-least-once, full load.
type ThroughputBatchPoint struct {
	BatchSize            int
	Throughput           float64
	BandwidthUtilization float64
	Pl                   float64
}

// ThroughputBatches is the swept B axis.
var ThroughputBatches = []int{1, 2, 3, 5, 8, 10}

// ThroughputBatchVector returns the experiment definition for one
// throughput-vs-batch point.
func ThroughputBatchVector(batch int) features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        10,
		LossRate:       0.02,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      batch,
		PollInterval:   0,
		MessageTimeout: 1500 * time.Millisecond,
	}
}

// ThroughputVsBatch measures delivered throughput over the batch size.
func ThroughputVsBatch(o Options) ([]ThroughputBatchPoint, error) {
	var points []point
	for i, b := range ThroughputBatches {
		points = append(points, point{v: ThroughputBatchVector(b), idx: 800 + i})
	}
	results, err := runBatch(o, points, func(p point) string {
		return fmt.Sprintf("tput-batch B=%d", p.v.BatchSize)
	})
	if err != nil {
		return nil, err
	}
	out := make([]ThroughputBatchPoint, len(points))
	for i, p := range points {
		out[i] = ThroughputBatchPoint{
			BatchSize:            p.v.BatchSize,
			Throughput:           results[i].Throughput,
			BandwidthUtilization: results[i].BandwidthUtilization,
			Pl:                   results[i].Pl,
		}
	}
	return out, nil
}

// ThroughputPartitionPoint is one marker of the
// throughput-vs-partition-count series: aggregate fleet throughput for
// one per-topic partition count at a fixed fleet shape.
type ThroughputPartitionPoint struct {
	Partitions int
	Producers  int
	Topics     int
	Throughput float64
	Pl         float64
}

// ThroughputPartitionCounts is the swept per-topic partition axis; the
// fleet shape (producers × topics) is fixed so partitioning is the only
// variable.
var ThroughputPartitionCounts = []int{1, 2, 4, 8, 16, 32}

// Fixed fleet shape of the partition series.
const (
	tputFleetProducers = 32
	tputFleetTopics    = 4
)

// ThroughputPartitionVector returns the per-producer feature vector of
// the partition series (batched at-least-once under mild loss; the
// per-producer load is throttled so the shards saturate partitions, not
// the source).
func ThroughputPartitionVector() features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        10,
		LossRate:       0.02,
		Semantics:      features.SemanticsAtLeastOnce,
		BatchSize:      2,
		PollInterval:   0,
		MessageTimeout: 1500 * time.Millisecond,
	}
}

// ThroughputVsPartitions measures aggregate fleet throughput over the
// per-topic partition count: each point is one fleet run (32 producers
// over 4 topics, keyed routing, consumer-group drain) whose shards fan
// out over the worker pool. Like every figure, the series is identical
// for any Workers value.
func ThroughputVsPartitions(o Options) ([]ThroughputPartitionPoint, error) {
	seedAt := exprun.LinearSeeds(o.Seed, seedStride)
	out := make([]ThroughputPartitionPoint, len(ThroughputPartitionCounts))
	for i, parts := range ThroughputPartitionCounts {
		f := testbed.Fleet{
			Features:   ThroughputPartitionVector(),
			Producers:  tputFleetProducers,
			Topics:     tputFleetTopics,
			Partitions: parts,
			Messages:   o.messages(),
			Seed:       seedAt(900 + i),
			MaxSimTime: maxSimTime(o.messages()),
		}
		res, err := testbed.RunFleetContext(o.ctx(), f, o.Workers)
		if err != nil {
			return nil, fmt.Errorf("figures: tput-partitions P=%d: %w", parts, err)
		}
		out[i] = ThroughputPartitionPoint{
			Partitions: parts,
			Producers:  tputFleetProducers,
			Topics:     tputFleetTopics,
			Throughput: res.Throughput,
			Pl:         res.Pl,
		}
		if o.Progress != nil {
			o.Progress(i+1, len(ThroughputPartitionCounts))
		}
	}
	return out, nil
}

// csvG renders a float in the canonical shortest form, so CSV artefacts
// are byte-comparable across runs and worker counts.
func csvG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteThroughputBatchCSV renders the batch series as a CSV artefact.
func WriteThroughputBatchCSV(w io.Writer, points []ThroughputBatchPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"batch_size", "throughput_msg_s", "bandwidth_utilization", "pl"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{strconv.Itoa(p.BatchSize), csvG(p.Throughput), csvG(p.BandwidthUtilization), csvG(p.Pl)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteThroughputPartitionsCSV renders the partition series as a CSV
// artefact.
func WriteThroughputPartitionsCSV(w io.Writer, points []ThroughputPartitionPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"partitions", "producers", "topics", "throughput_msg_s", "pl"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			strconv.Itoa(p.Partitions), strconv.Itoa(p.Producers), strconv.Itoa(p.Topics),
			csvG(p.Throughput), csvG(p.Pl),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
