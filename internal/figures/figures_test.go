package figures

import (
	"testing"
	"time"

	"kafkarel/internal/features"
)

// The heavy figure sweeps are exercised end-to-end by the root package's
// shape tests; here we verify the experiment definitions themselves and
// the cheap generators.

func TestVectorDefinitionsValid(t *testing.T) {
	var vectors []features.Vector
	for _, m := range Fig4Sizes {
		vectors = append(vectors,
			Fig4Vector(m, features.SemanticsAtMostOnce),
			Fig4Vector(m, features.SemanticsAtLeastOnce))
	}
	for _, to := range Fig5Timeouts {
		vectors = append(vectors, Fig5Vector(to, features.SemanticsAtMostOnce))
	}
	for _, d := range Fig6Intervals {
		vectors = append(vectors, Fig6Vector(d))
	}
	for _, l := range Fig7Losses {
		for _, b := range Fig7Batches {
			vectors = append(vectors, Fig7Vector(l, b, features.SemanticsAtLeastOnce))
		}
	}
	for _, b := range Fig8Batches {
		for _, l := range Fig8Losses {
			vectors = append(vectors, Fig8Vector(b, l))
		}
	}
	for i, v := range vectors {
		if err := v.Validate(); err != nil {
			t.Errorf("definition %d invalid: %v (%+v)", i, err, v)
		}
	}
}

func TestFig4MatchesPaperSetup(t *testing.T) {
	v := Fig4Vector(100, features.SemanticsAtMostOnce)
	if v.DelayMs != 100 || v.LossRate != 0.19 {
		t.Errorf("Fig. 4 network = D%.0f L%.2f, paper uses D=100ms L=19%%", v.DelayMs, v.LossRate)
	}
	if v.BatchSize != 1 || v.PollInterval != 0 {
		t.Errorf("Fig. 4 must be streaming at full load: %+v", v)
	}
	if Fig4Sizes[0] != 50 || Fig4Sizes[len(Fig4Sizes)-1] != 1000 {
		t.Errorf("Fig. 4 sweeps %v, paper sweeps 50-1000B", Fig4Sizes)
	}
}

func TestFig5And6AreFaultFree(t *testing.T) {
	if v := Fig5Vector(time.Second, features.SemanticsAtLeastOnce); v.LossRate != 0 {
		t.Errorf("Fig. 5 injects loss: %+v", v)
	}
	v := Fig6Vector(0)
	if v.LossRate != 0 {
		t.Errorf("Fig. 6 injects loss: %+v", v)
	}
	if v.MessageTimeout != 500*time.Millisecond {
		t.Errorf("Fig. 6 T_o = %v, paper fixes 500ms", v.MessageTimeout)
	}
	if v.Semantics != features.SemanticsAtMostOnce {
		t.Errorf("Fig. 6 semantics = %d", v.Semantics)
	}
}

func TestFig7CoversPaperRange(t *testing.T) {
	if Fig7Losses[0] != 0 || Fig7Losses[len(Fig7Losses)-1] != 0.50 {
		t.Errorf("Fig. 7 loss axis %v, paper sweeps 0-50%%", Fig7Losses)
	}
	if Fig7Batches[0] != 1 || Fig7Batches[len(Fig7Batches)-1] != 10 {
		t.Errorf("Fig. 7 batch axis %v, paper sweeps 1-10", Fig7Batches)
	}
	// The knee region must be sampled finely enough to locate it.
	knee := 0
	for _, l := range Fig7Losses {
		if l >= 0.05 && l <= 0.20 {
			knee++
		}
	}
	if knee < 4 {
		t.Errorf("only %d samples in the 5-20%% knee region", knee)
	}
}

func TestFig8AllowsSpuriousRetries(t *testing.T) {
	v := Fig8Vector(2, 0.1)
	if v.Semantics != features.SemanticsAtLeastOnce {
		t.Error("Fig. 8 must use at-least-once (duplicates need acks+retries)")
	}
	// The delivery budget must exceed the testbed's per-attempt timeout,
	// or Case 5 cannot occur at all.
	if v.MessageTimeout <= 2*time.Second {
		t.Errorf("Fig. 8 T_o = %v leaves no room for a retry after the 2s request timeout", v.MessageTimeout)
	}
}

func TestFig9Deterministic(t *testing.T) {
	a, err := Fig9(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig9(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("series lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs", i)
		}
	}
	c, err := Fig9(4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical traces")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.messages() != 20000 {
		t.Errorf("default messages = %d", o.messages())
	}
	o.Messages = 5
	if o.messages() != 5 {
		t.Errorf("override ignored: %d", o.messages())
	}
	if maxSimTime(100) < 30*time.Minute {
		t.Error("maxSimTime floor missing")
	}
	if maxSimTime(1_000_000) < 1_000_000*time.Second {
		t.Error("maxSimTime does not scale with message count")
	}
}

func TestTable1SmallRun(t *testing.T) {
	res, err := Table1(Options{Messages: 800, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 800 {
		t.Errorf("total = %d", res.Total)
	}
	var sum float64
	for _, r := range res.Rows {
		if r.Share < 0 || r.Share > 1 {
			t.Errorf("share out of range: %+v", r)
		}
		sum += r.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("case shares sum to %v", sum)
	}
}
