package figures

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"kafkarel/internal/exprun"
	"kafkarel/internal/features"
	"kafkarel/internal/obs"
	"kafkarel/internal/testbed"
)

// The latency family is an extension beyond the paper's figures: the
// paper's timeliness requirement (T_p ≤ S) is evaluated producer-side,
// while the per-record spans measure the whole delivery path —
// enqueue → wire send → broker append → replication → producer ack →
// consumer delivery → durable commit — so each semantics gets an
// empirical latency distribution, not just a stale rate. Every point
// runs a consumer group so the delivery and commit spans fire.

// LatencyPoint is one latency-distribution marker: the key spans of a
// run at one delivery semantics under one network condition.
type LatencyPoint struct {
	Semantics int
	DelayMs   float64
	LossRate  float64

	Send     testbed.SpanHist // enqueue → first wire send
	Ack      testbed.SpanHist // enqueue → producer ack
	Delivery testbed.SpanHist // enqueue → consumer delivery
	Commit   testbed.SpanHist // commit send → durable ack
}

// LatencySemantics is the swept semantics axis.
var LatencySemantics = []int{
	features.SemanticsAtMostOnce,
	features.SemanticsAtLeastOnce,
	features.SemanticsExactlyOnce,
}

// latencyLosses are the two network conditions: a clean LAN and the
// mild-loss WAN used by the throughput family.
var latencyLosses = []float64{0, 0.02}

// LatencyVector returns the experiment definition for one latency
// point.
func LatencyVector(semantics int, loss float64) features.Vector {
	return features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        10,
		LossRate:       loss,
		Semantics:      semantics,
		BatchSize:      2,
		PollInterval:   0,
		MessageTimeout: 1500 * time.Millisecond,
	}
}

// Latency measures the end-to-end latency spans over semantics × loss.
// Each experiment runs one consumer-group member alongside the
// producer; points fan out over the worker pool and the series is
// identical for any Workers value.
func Latency(o Options) ([]LatencyPoint, error) {
	var points []point
	for si, sem := range LatencySemantics {
		for li, loss := range latencyLosses {
			points = append(points, point{v: LatencyVector(sem, loss), idx: 1000 + si*len(latencyLosses) + li})
		}
	}
	seedAt := exprun.LinearSeeds(o.Seed, seedStride)
	results, err := exprun.Map(o.ctx(), points,
		func(ctx context.Context, _ int, p point) (testbed.Result, error) {
			res, err := testbed.RunCtx(ctx, testbed.Experiment{
				Features:   p.v,
				Messages:   o.messages(),
				Seed:       seedAt(p.idx),
				MaxSimTime: maxSimTime(o.messages()),
				Consumers:  1,
			})
			if err != nil {
				return testbed.Result{}, fmt.Errorf("figures: latency sem=%d L=%v: %w", p.v.Semantics, p.v.LossRate, err)
			}
			return res, nil
		},
		exprun.Options{Workers: o.Workers, Progress: o.Progress})
	if err != nil {
		return nil, err
	}
	out := make([]LatencyPoint, len(points))
	for i, p := range points {
		out[i] = LatencyPoint{
			Semantics: p.v.Semantics,
			DelayMs:   p.v.DelayMs,
			LossRate:  p.v.LossRate,
			Send:      results[i].Metrics.SpanSend,
			Ack:       results[i].Metrics.SpanAck,
			Delivery:  results[i].Metrics.SpanDelivery,
			Commit:    results[i].Metrics.SpanCommit,
		}
	}
	return out, nil
}

// WriteLatencyCSV renders the percentile series: one row per
// (point, span) with p50/p95/p99/max in nanoseconds.
func WriteLatencyCSV(w io.Writer, points []LatencyPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"semantics", "delay_ms", "loss_rate", "span", "count", "p50_ns", "p95_ns", "p99_ns", "max_ns"}); err != nil {
		return err
	}
	for _, p := range points {
		for _, s := range []struct {
			name string
			h    testbed.SpanHist
		}{
			{"enqueue_to_send", p.Send},
			{"enqueue_to_ack", p.Ack},
			{"enqueue_to_delivery", p.Delivery},
			{"commit", p.Commit},
		} {
			rec := []string{
				strconv.Itoa(p.Semantics), csvG(p.DelayMs), csvG(p.LossRate), s.name,
				strconv.FormatUint(s.h.Total(), 10),
				strconv.FormatInt(int64(s.h.Quantile(0.50)), 10),
				strconv.FormatInt(int64(s.h.Quantile(0.95)), 10),
				strconv.FormatInt(int64(s.h.Quantile(0.99)), 10),
				strconv.FormatInt(int64(s.h.Max), 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLatencyCDFCSV renders the end-to-end delivery span of every
// point as an empirical CDF over the histogram bucket bounds: one row
// per (point, bucket) with the cumulative delivered fraction at the
// bound.
func WriteLatencyCDFCSV(w io.Writer, points []LatencyPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"semantics", "delay_ms", "loss_rate", "bound_ns", "cum_fraction"}); err != nil {
		return err
	}
	for _, p := range points {
		n := p.Delivery.Total()
		if n == 0 {
			continue
		}
		var cum uint64
		for i, c := range p.Delivery.Counts {
			cum += c
			bound := int64(p.Delivery.Max)
			if i < len(obs.LatencyBounds) {
				bound = obs.LatencyBounds[i]
			}
			rec := []string{
				strconv.Itoa(p.Semantics), csvG(p.DelayMs), csvG(p.LossRate),
				strconv.FormatInt(bound, 10),
				csvG(float64(cum) / float64(n)),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
