package wire

import (
	"reflect"
	"testing"
	"time"
)

func TestTxnMessageRoundTrips(t *testing.T) {
	initReq := InitProducerIDRequest{CorrelationID: 1, TransactionalID: "txn-p0", TxnTimeout: time.Second}
	if got, err := DecodeInitProducerIDRequest(initReq.Encode(nil)); err != nil || !reflect.DeepEqual(got, initReq) {
		t.Errorf("init request: got %+v err %v", got, err)
	}
	initResp := InitProducerIDResponse{CorrelationID: 1, ProducerID: 77, ProducerEpoch: 4, Err: ErrNone}
	if got, err := DecodeInitProducerIDResponse(initResp.Encode(nil)); err != nil || !reflect.DeepEqual(got, initResp) {
		t.Errorf("init response: got %+v err %v", got, err)
	}
	addParts := AddPartitionsToTxnRequest{
		CorrelationID: 2, TransactionalID: "txn-p0", ProducerID: 77, ProducerEpoch: 4,
		Topic: "out", Partition: 3,
	}
	if got, err := DecodeAddPartitionsToTxnRequest(addParts.Encode(nil)); err != nil || !reflect.DeepEqual(got, addParts) {
		t.Errorf("add-partitions request: got %+v err %v", got, err)
	}
	addOffsets := AddOffsetsToTxnRequest{
		CorrelationID: 3, TransactionalID: "txn-p0", ProducerID: 77, ProducerEpoch: 4, Group: "g",
	}
	if got, err := DecodeAddOffsetsToTxnRequest(addOffsets.Encode(nil)); err != nil || !reflect.DeepEqual(got, addOffsets) {
		t.Errorf("add-offsets request: got %+v err %v", got, err)
	}
	commit := TxnOffsetCommitRequest{
		CorrelationID: 4, TransactionalID: "txn-p0", ProducerID: 77, ProducerEpoch: 4,
		Group: "g", Topic: "in", Partition: 1, Offset: 1234,
	}
	if got, err := DecodeTxnOffsetCommitRequest(commit.Encode(nil)); err != nil || !reflect.DeepEqual(got, commit) {
		t.Errorf("txn-offset-commit request: got %+v err %v", got, err)
	}
	end := EndTxnRequest{CorrelationID: 5, TransactionalID: "txn-p0", ProducerID: 77, ProducerEpoch: 4, Commit: true}
	if got, err := DecodeEndTxnRequest(end.Encode(nil)); err != nil || !reflect.DeepEqual(got, end) {
		t.Errorf("end-txn request: got %+v err %v", got, err)
	}
	endResp := EndTxnResponse{CorrelationID: 5, Err: ErrProducerFenced}
	if got, err := DecodeEndTxnResponse(endResp.Encode(nil)); err != nil || !reflect.DeepEqual(got, endResp) {
		t.Errorf("end-txn response: got %+v err %v", got, err)
	}
}

func TestTxnMessageEncodedSizes(t *testing.T) {
	msgs := []interface {
		Encode([]byte) []byte
		EncodedSize() int
	}{
		InitProducerIDRequest{TransactionalID: "tid", TxnTimeout: time.Second},
		InitProducerIDResponse{ProducerID: 1, ProducerEpoch: 2},
		AddPartitionsToTxnRequest{TransactionalID: "tid", Topic: "t", Partition: 1},
		AddPartitionsToTxnResponse{},
		AddOffsetsToTxnRequest{TransactionalID: "tid", Group: "g"},
		AddOffsetsToTxnResponse{},
		TxnOffsetCommitRequest{TransactionalID: "tid", Group: "g", Topic: "t"},
		TxnOffsetCommitResponse{},
		EndTxnRequest{TransactionalID: "tid", Commit: true},
		EndTxnResponse{},
	}
	for i, m := range msgs {
		if got := len(m.Encode(nil)); got != m.EncodedSize() {
			t.Errorf("message %d: EncodedSize = %d, actual %d", i, m.EncodedSize(), got)
		}
	}
}

func TestTxnMessageTruncationSafety(t *testing.T) {
	full := [][]byte{
		InitProducerIDRequest{TransactionalID: "tid", TxnTimeout: time.Second}.Encode(nil),
		AddPartitionsToTxnRequest{TransactionalID: "tid", Topic: "t", Partition: 1}.Encode(nil),
		AddOffsetsToTxnRequest{TransactionalID: "tid", Group: "g"}.Encode(nil),
		TxnOffsetCommitRequest{TransactionalID: "tid", Group: "g", Topic: "t", Offset: 9}.Encode(nil),
		EndTxnRequest{TransactionalID: "tid", Commit: true}.Encode(nil),
	}
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := DecodeInitProducerIDRequest(b); return err },
		func(b []byte) error { _, err := DecodeAddPartitionsToTxnRequest(b); return err },
		func(b []byte) error { _, err := DecodeAddOffsetsToTxnRequest(b); return err },
		func(b []byte) error { _, err := DecodeTxnOffsetCommitRequest(b); return err },
		func(b []byte) error { _, err := DecodeEndTxnRequest(b); return err },
	}
	for i, enc := range full {
		for cut := 0; cut < len(enc); cut++ {
			if err := decoders[i](enc[:cut]); err == nil {
				t.Errorf("message %d truncated to %d bytes accepted", i, cut)
			}
		}
		if err := decoders[i](append(append([]byte(nil), enc...), 0)); err == nil {
			t.Errorf("message %d with trailing byte accepted", i)
		}
	}
}
