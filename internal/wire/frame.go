package wire

import (
	"encoding/binary"
	"fmt"
)

// Frame header: 4-byte body length followed by a 2-byte API key, after
// which the API-specific body follows. This mirrors Kafka's size-prefixed
// TCP framing and lets a byte-stream receiver split messages.
const frameHeaderSize = 6

// MaxFrameSize bounds a single frame; oversized frames are rejected as
// corrupt rather than allocating unbounded memory.
const MaxFrameSize = 16 << 20

// EncodeFrame wraps an encoded body in a frame header.
func EncodeFrame(api uint16, body []byte) []byte {
	out := make([]byte, 0, frameHeaderSize+len(body))
	out = binary.BigEndian.AppendUint32(out, uint32(len(body)+2))
	out = binary.BigEndian.AppendUint16(out, api)
	return append(out, body...)
}

// FrameSize returns the total encoded size of a frame with the given body
// size, for senders that budget bytes before encoding.
func FrameSize(bodySize int) int { return frameHeaderSize + bodySize }

// Splitter incrementally splits a byte stream into frames. Feed it chunks
// in arrival order with Push; complete frames come back in order.
type Splitter struct {
	buf []byte
}

// Push appends stream bytes and returns all frames completed by them.
// Each returned frame is (api, body); bodies alias freshly copied memory.
func (s *Splitter) Push(chunk []byte) ([]FramePart, error) {
	s.buf = append(s.buf, chunk...)
	var out []FramePart
	for {
		if len(s.buf) < 4 {
			return out, nil
		}
		size := int(binary.BigEndian.Uint32(s.buf))
		if size < 2 || size > MaxFrameSize {
			return out, fmt.Errorf("frame size %d: %w", size, ErrBadFrame)
		}
		if len(s.buf) < 4+size {
			return out, nil
		}
		api := binary.BigEndian.Uint16(s.buf[4:])
		body := make([]byte, size-2)
		copy(body, s.buf[6:4+size])
		s.buf = s.buf[4+size:]
		out = append(out, FramePart{API: api, Body: body})
	}
}

// Buffered returns the number of bytes waiting for frame completion.
func (s *Splitter) Buffered() int { return len(s.buf) }

// FramePart is one complete frame split from a stream.
type FramePart struct {
	API  uint16
	Body []byte
}
