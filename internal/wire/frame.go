package wire

import (
	"encoding/binary"
	"fmt"
)

// Frame header: 4-byte body length followed by a 2-byte API key, after
// which the API-specific body follows. This mirrors Kafka's size-prefixed
// TCP framing and lets a byte-stream receiver split messages.
const frameHeaderSize = 6

// MaxFrameSize bounds a single frame; oversized frames are rejected as
// corrupt rather than allocating unbounded memory.
const MaxFrameSize = 16 << 20

// EncodeFrame wraps an encoded body in a frame header.
func EncodeFrame(api uint16, body []byte) []byte {
	return AppendFrame(make([]byte, 0, frameHeaderSize+len(body)), api, body)
}

// AppendFrame appends a framed body to dst and returns the result, so
// hot-path senders can reuse one frame buffer across sends instead of
// allocating per frame.
func AppendFrame(dst []byte, api uint16, body []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)+2))
	dst = binary.BigEndian.AppendUint16(dst, api)
	return append(dst, body...)
}

// FrameSize returns the total encoded size of a frame with the given body
// size, for senders that budget bytes before encoding.
func FrameSize(bodySize int) int { return frameHeaderSize + bodySize }

// Splitter incrementally splits a byte stream into frames. Feed it chunks
// in arrival order with Push; complete frames come back in order.
type Splitter struct {
	buf   []byte
	off   int         // bytes of buf consumed by previously returned frames
	parts []FramePart // reused backing array for Push results
}

// Push appends stream bytes and returns all frames completed by them.
//
// Ownership: frame bodies are zero-copy aliases into the splitter's
// internal buffer, which is REUSED — bodies (and anything decoded from
// them, such as record payloads) are valid only until the next Push.
// Consumers that retain decoded data across Pushes (in particular across
// simulated time) must deep-copy it first; see wire.CloneRecords. The
// returned []FramePart slice itself is also reused by the next Push.
func (s *Splitter) Push(chunk []byte) ([]FramePart, error) {
	// Reclaim space consumed by frames returned from the previous Push.
	// A pending partial frame is moved to the front; it is at most one
	// chunk long (a partial following a consumed frame started inside the
	// last chunk), so the copy stays small, and a large frame arriving
	// alone accumulates with off == 0 and is never moved.
	if s.off > 0 {
		n := copy(s.buf, s.buf[s.off:])
		s.buf = s.buf[:n]
		s.off = 0
	}
	s.buf = append(s.buf, chunk...)
	out := s.parts[:0]
	for {
		b := s.buf[s.off:]
		if len(b) < 4 {
			s.parts = out
			return out, nil
		}
		size := int(binary.BigEndian.Uint32(b))
		if size < 2 || size > MaxFrameSize {
			s.parts = out
			return out, fmt.Errorf("frame size %d: %w", size, ErrBadFrame)
		}
		if len(b) < 4+size {
			s.parts = out
			return out, nil
		}
		api := binary.BigEndian.Uint16(b[4:])
		body := b[6 : 4+size : 4+size]
		s.off += 4 + size
		out = append(out, FramePart{API: api, Body: body})
	}
}

// Buffered returns the number of bytes waiting for frame completion.
func (s *Splitter) Buffered() int { return len(s.buf) - s.off }

// FramePart is one complete frame split from a stream.
type FramePart struct {
	API  uint16
	Body []byte
}
