package wire

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// roundTrip encodes a message, checks EncodedSize, decodes it back with
// dec, and compares the result via reflection.
func roundTrip[T interface {
	Encode([]byte) []byte
	EncodedSize() int
}](t *testing.T, msg T, decode func([]byte) (T, error)) {
	t.Helper()
	enc := msg.Encode(nil)
	if len(enc) != msg.EncodedSize() {
		t.Errorf("%T: EncodedSize = %d, actual %d", msg, msg.EncodedSize(), len(enc))
	}
	got, err := decode(enc)
	if err != nil {
		t.Fatalf("%T: decode: %v", msg, err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Errorf("%T round trip:\n got %+v\nwant %+v", msg, got, msg)
	}
	// Every truncation must fail, never panic.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decode(enc[:cut]); err == nil {
			t.Fatalf("%T: truncation to %d bytes accepted", msg, cut)
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := decode(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Errorf("%T: trailing byte accepted", msg)
	}
}

func TestGroupMessageRoundTrips(t *testing.T) {
	roundTrip(t, OffsetCommitRequest{
		CorrelationID: 7, Group: "g1", MemberID: "g1-0", Generation: 3,
		Topic: "stream", Partition: 2, Offset: 12345,
	}, DecodeOffsetCommitRequest)
	roundTrip(t, OffsetCommitResponse{
		CorrelationID: 7, Group: "g1", Topic: "stream", Partition: 2,
		Err: ErrIllegalGeneration,
	}, DecodeOffsetCommitResponse)
	roundTrip(t, OffsetFetchRequest{
		CorrelationID: 8, Group: "g1", MemberID: "g1-0", Generation: 3,
		Topic: "stream", Partition: 0,
	}, DecodeOffsetFetchRequest)
	roundTrip(t, OffsetFetchResponse{
		CorrelationID: 8, Group: "g1", Topic: "stream", Partition: 0,
		Offset: 99, Generation: 4, Err: ErrNone,
	}, DecodeOffsetFetchResponse)
	roundTrip(t, JoinGroupRequest{
		CorrelationID: 9, Group: "g1", MemberID: "", Topic: "stream",
		SessionTimeout: 500 * time.Millisecond,
	}, DecodeJoinGroupRequest)
	roundTrip(t, JoinGroupRequest{
		CorrelationID: 9, Group: "g1", MemberID: "g1-1", Topic: "stream",
		SessionTimeout: 500 * time.Millisecond,
		Protocol:       ProtocolCooperative, OwnedPartitions: []int32{0, 2, 5},
	}, DecodeJoinGroupRequest)
	roundTrip(t, JoinGroupResponse{
		CorrelationID: 9, Group: "g1", Generation: 5, MemberID: "g1-1",
		Leader: "g1-0", Members: []string{"g1-0", "g1-1"}, Err: ErrNone,
	}, DecodeJoinGroupResponse)
	roundTrip(t, SyncGroupRequest{
		CorrelationID: 10, Group: "g1", MemberID: "g1-1", Generation: 5,
	}, DecodeSyncGroupRequest)
	roundTrip(t, SyncGroupResponse{
		CorrelationID: 10, Group: "g1", Generation: 5,
		Assigned: []int32{1, 3}, Err: ErrNone,
	}, DecodeSyncGroupResponse)
	roundTrip(t, HeartbeatRequest{
		CorrelationID: 11, Group: "g1", MemberID: "g1-0", Generation: 5,
	}, DecodeHeartbeatRequest)
	roundTrip(t, HeartbeatResponse{
		CorrelationID: 11, Err: ErrRebalanceInProgress,
	}, DecodeHeartbeatResponse)
	roundTrip(t, LeaveGroupRequest{
		CorrelationID: 12, Group: "g1", MemberID: "g1-0",
	}, DecodeLeaveGroupRequest)
	roundTrip(t, LeaveGroupResponse{
		CorrelationID: 12, Err: ErrUnknownMemberID,
	}, DecodeLeaveGroupResponse)
}

// TestGroupDecoderInterning checks that a primed decoder returns the
// primed group/member/topic strings (no per-message string allocation on
// the commit and heartbeat hot paths).
func TestGroupDecoderInterning(t *testing.T) {
	d := &Decoder{Topic: "stream", Group: "g1", Member: "g1-0"}
	// Build the encoded form from non-interned copies so the decode
	// can't alias the originals.
	group := strings.Clone("g1")
	member := strings.Clone("g1-0")
	topic := strings.Clone("stream")
	enc := OffsetCommitRequest{
		Group: group, MemberID: member, Topic: topic, Generation: 1, Offset: 5,
	}.Encode(nil)
	got, err := d.OffsetCommitRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Group != "g1" || got.MemberID != "g1-0" || got.Topic != "stream" {
		t.Fatalf("decoded %+v", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r, err := d.OffsetCommitRequest(enc)
		if err != nil || r.Offset != 5 {
			t.Fatal("decode failed")
		}
	})
	if allocs != 0 {
		t.Errorf("primed OffsetCommitRequest decode allocates %.1f/op, want 0", allocs)
	}
	hb := HeartbeatRequest{Group: group, MemberID: member, Generation: 1}.Encode(nil)
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := d.HeartbeatRequest(hb); err != nil {
			t.Fatal("decode failed")
		}
	})
	if allocs != 0 {
		t.Errorf("primed HeartbeatRequest decode allocates %.1f/op, want 0", allocs)
	}
}

func TestNewErrorCodeNamesAndRetriability(t *testing.T) {
	cases := []struct {
		code      ErrorCode
		name      string
		retriable bool
	}{
		{ErrCoordinatorNotAvailable, "COORDINATOR_NOT_AVAILABLE", true},
		{ErrIllegalGeneration, "ILLEGAL_GENERATION", false},
		{ErrUnknownMemberID, "UNKNOWN_MEMBER_ID", false},
		{ErrRebalanceInProgress, "REBALANCE_IN_PROGRESS", true},
		{ErrNoCommittedOffset, "NO_COMMITTED_OFFSET", false},
	}
	for _, c := range cases {
		if c.code.String() != c.name {
			t.Errorf("%d.String() = %q, want %q", c.code, c.code.String(), c.name)
		}
		if c.code.Retriable() != c.retriable {
			t.Errorf("%s.Retriable() = %v, want %v", c.name, c.code.Retriable(), c.retriable)
		}
		if int(c.code) >= NumErrorCodes {
			t.Errorf("%s = %d outside NumErrorCodes = %d", c.name, c.code, NumErrorCodes)
		}
	}
}
