package wire

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleBatch() RecordBatch {
	return RecordBatch{
		ProducerID:    7,
		ProducerEpoch: 3,
		BaseSequence:  100,
		Idempotent:    true,
		Transactional: true,
		Records: []Record{
			{Key: 1, Timestamp: time.Second, Payload: []byte("hello")},
			{Key: 2, Timestamp: 2 * time.Second, Payload: bytes.Repeat([]byte{0xAB}, 200)},
			{Key: 3, Timestamp: 0, Payload: nil},
		},
	}
}

func TestRecordBatchRoundTrip(t *testing.T) {
	b := sampleBatch()
	enc := b.Encode(nil)
	if len(enc) != b.EncodedSize() {
		t.Errorf("EncodedSize = %d, actual %d", b.EncodedSize(), len(enc))
	}
	got, rest, err := DecodeRecordBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes", len(rest))
	}
	if got.ProducerID != b.ProducerID || got.ProducerEpoch != b.ProducerEpoch ||
		got.BaseSequence != b.BaseSequence || got.Idempotent != b.Idempotent ||
		got.Transactional != b.Transactional || got.Control != b.Control {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Records) != len(b.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(b.Records))
	}
	for i := range b.Records {
		w, g := b.Records[i], got.Records[i]
		if g.Key != w.Key || g.Timestamp != w.Timestamp || !bytes.Equal(g.Payload, w.Payload) {
			t.Errorf("record %d: got %+v want %+v", i, g, w)
		}
	}
}

func TestRecordBatchCRCDetectsCorruption(t *testing.T) {
	enc := sampleBatch().Encode(nil)
	// Flip a record bit (after the 29-byte header).
	enc[35] ^= 0x01
	if _, _, err := DecodeRecordBatch(enc); !errors.Is(err, ErrBadCRC) {
		t.Errorf("err = %v, want ErrBadCRC", err)
	}
}

func TestRecordBatchShortBuffer(t *testing.T) {
	enc := sampleBatch().Encode(nil)
	for _, cut := range []int{0, 10, 23, 28, 34, len(enc) - 1} {
		if _, _, err := DecodeRecordBatch(enc[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestEmptyBatchRoundTrip(t *testing.T) {
	b := RecordBatch{ProducerID: 1}
	got, rest, err := DecodeRecordBatch(b.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 || len(got.Records) != 0 {
		t.Errorf("got %+v rest %d", got, len(rest))
	}
}

func TestProduceRequestRoundTrip(t *testing.T) {
	req := ProduceRequest{
		CorrelationID: 42,
		Topic:         "events",
		Partition:     2,
		Acks:          AcksAll,
		Batch:         sampleBatch(),
	}
	enc := req.Encode(nil)
	if len(enc) != req.EncodedSize() {
		t.Errorf("EncodedSize = %d, actual %d", req.EncodedSize(), len(enc))
	}
	got, err := DecodeProduceRequest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.CorrelationID != 42 || got.Topic != "events" || got.Partition != 2 || got.Acks != AcksAll {
		t.Errorf("got %+v", got)
	}
	if len(got.Batch.Records) != 3 {
		t.Errorf("batch records = %d", len(got.Batch.Records))
	}
	if _, err := DecodeProduceRequest(append(enc, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := DecodeProduceRequest(enc[:3]); err == nil {
		t.Error("truncated request accepted")
	}
}

func TestProduceResponseRoundTrip(t *testing.T) {
	resp := ProduceResponse{
		CorrelationID: 9,
		Topic:         "t",
		Partition:     1,
		BaseOffset:    123456,
		Err:           ErrRequestTimedOut,
	}
	enc := resp.Encode(nil)
	if len(enc) != resp.EncodedSize() {
		t.Errorf("EncodedSize = %d, actual %d", resp.EncodedSize(), len(enc))
	}
	got, err := DecodeProduceResponse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Errorf("got %+v, want %+v", got, resp)
	}
	if _, err := DecodeProduceResponse(enc[:7]); err == nil {
		t.Error("truncated response accepted")
	}
}

func TestFetchRequestRoundTrip(t *testing.T) {
	req := FetchRequest{CorrelationID: 1, Topic: "x", Partition: 0, Offset: 555, MaxRecords: 100, Isolation: ReadCommitted}
	got, err := DecodeFetchRequest(req.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Errorf("got %+v, want %+v", got, req)
	}
}

func TestFetchResponseRoundTrip(t *testing.T) {
	resp := FetchResponse{
		CorrelationID: 3,
		Topic:         "t",
		Partition:     1,
		HighWatermark: 99,
		NextOffset:    42,
		LastStable:    77,
		Err:           ErrNone,
		Records: []Record{
			{Key: 10, Timestamp: time.Millisecond, Payload: []byte("a")},
			{Key: 11, Timestamp: 2 * time.Millisecond, Payload: []byte("bb")},
		},
	}
	got, err := DecodeFetchResponse(resp.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.HighWatermark != 99 || got.NextOffset != 42 || got.LastStable != 77 ||
		len(got.Records) != 2 || got.Records[1].Key != 11 {
		t.Errorf("got %+v", got)
	}
	enc := resp.Encode(nil)
	if _, err := DecodeFetchResponse(enc[:len(enc)-1]); err == nil {
		t.Error("truncated response accepted")
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	req := MetadataRequest{CorrelationID: 5, Topic: "logs"}
	gotReq, err := DecodeMetadataRequest(req.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if gotReq != req {
		t.Errorf("got %+v, want %+v", gotReq, req)
	}
	resp := MetadataResponse{
		CorrelationID: 5,
		Topic:         "logs",
		Partitions: []PartitionMetadata{
			{Partition: 0, Leader: 1, Replicas: []int32{1, 2, 3}},
			{Partition: 1, Leader: 2, Replicas: []int32{2, 3}},
		},
	}
	gotResp, err := DecodeMetadataResponse(resp.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Errorf("got %+v, want %+v", gotResp, resp)
	}
}

func TestErrorCodeStringsAndRetriable(t *testing.T) {
	if ErrNone.String() != "NONE" || ErrorCode(200).String() != "ERROR_200" {
		t.Error("String() wrong")
	}
	retriable := []ErrorCode{ErrNotLeader, ErrRequestTimedOut, ErrBrokerUnavailable, ErrNotEnoughReplicas}
	for _, e := range retriable {
		if !e.Retriable() {
			t.Errorf("%v not retriable", e)
		}
	}
	for _, e := range []ErrorCode{ErrNone, ErrCorruptMessage, ErrDuplicateSequence, ErrUnknownTopicOrPartition} {
		if e.Retriable() {
			t.Errorf("%v retriable", e)
		}
	}
}

func TestAcksString(t *testing.T) {
	cases := map[RequiredAcks]string{
		AcksNone: "acks=0", AcksLeader: "acks=1", AcksAll: "acks=all", 5: "acks=5",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestFrameRoundTripViaSplitter(t *testing.T) {
	body1 := []byte("first")
	body2 := []byte("second body")
	stream := append(EncodeFrame(APIProduce, body1), EncodeFrame(APIFetch, body2)...)
	var s Splitter
	var frames []FramePart
	// Feed one byte at a time to exercise partial-frame buffering.
	for _, c := range stream {
		got, err := s.Push([]byte{c})
		if err != nil {
			t.Fatal(err)
		}
		// Bodies alias the splitter's reused buffer and are only valid
		// until the next Push; copy them to retain.
		for _, fr := range got {
			fr.Body = append([]byte(nil), fr.Body...)
			frames = append(frames, fr)
		}
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %d, want 2", len(frames))
	}
	if frames[0].API != APIProduce || !bytes.Equal(frames[0].Body, body1) {
		t.Errorf("frame 0 = %+v", frames[0])
	}
	if frames[1].API != APIFetch || !bytes.Equal(frames[1].Body, body2) {
		t.Errorf("frame 1 = %+v", frames[1])
	}
	if s.Buffered() != 0 {
		t.Errorf("Buffered = %d, want 0", s.Buffered())
	}
}

func TestSplitterRejectsBadSize(t *testing.T) {
	var s Splitter
	if _, err := s.Push([]byte{0, 0, 0, 1, 0}); err == nil { // size 1 < 2
		t.Error("undersized frame accepted")
	}
	var s2 Splitter
	if _, err := s2.Push([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestFrameSize(t *testing.T) {
	body := []byte("abc")
	if got := len(EncodeFrame(0, body)); got != FrameSize(len(body)) {
		t.Errorf("FrameSize = %d, actual %d", FrameSize(len(body)), got)
	}
}

// Property: any batch of random records round-trips exactly, across
// every combination of the header flags (Idempotent, Transactional,
// Control) and any producer epoch.
func TestPropertyBatchRoundTrip(t *testing.T) {
	f := func(seed uint64, n, flagBits uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		b := RecordBatch{
			ProducerID:    rng.Uint64(),
			ProducerEpoch: rng.Uint32(),
			BaseSequence:  rng.Uint64(),
			Idempotent:    flagBits&1 != 0,
			Transactional: flagBits&2 != 0,
			Control:       flagBits&4 != 0,
		}
		count := int(n % 20)
		for i := 0; i < count; i++ {
			payload := make([]byte, rng.IntN(300))
			for j := range payload {
				payload[j] = byte(rng.UintN(256))
			}
			b.Records = append(b.Records, Record{
				Key:       rng.Uint64(),
				Timestamp: time.Duration(rng.Int64N(1e15)),
				Payload:   payload,
			})
		}
		got, rest, err := DecodeRecordBatch(b.Encode(nil))
		if err != nil || len(rest) != 0 {
			return false
		}
		if got.ProducerID != b.ProducerID || got.ProducerEpoch != b.ProducerEpoch ||
			got.BaseSequence != b.BaseSequence || got.Idempotent != b.Idempotent ||
			got.Transactional != b.Transactional || got.Control != b.Control ||
			len(got.Records) != len(b.Records) {
			return false
		}
		for i := range b.Records {
			if got.Records[i].Key != b.Records[i].Key ||
				got.Records[i].Timestamp != b.Records[i].Timestamp ||
				!bytes.Equal(got.Records[i].Payload, b.Records[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: truncating an encoded batch at any boundary never decodes
// successfully and never panics — the grown header (producer epoch +
// control/transactional flags) must fail closed at every cut point.
func TestPropertyBatchTruncationSafety(t *testing.T) {
	f := func(seed uint64, n, flagBits uint8, cutFrac uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		b := RecordBatch{
			ProducerID:    rng.Uint64(),
			ProducerEpoch: rng.Uint32(),
			BaseSequence:  rng.Uint64(),
			Idempotent:    flagBits&1 != 0,
			Transactional: flagBits&2 != 0,
			Control:       flagBits&4 != 0,
		}
		count := int(n%8) + 1 // at least one record so every cut truncates
		for i := 0; i < count; i++ {
			payload := make([]byte, rng.IntN(64)+1)
			b.Records = append(b.Records, Record{Key: rng.Uint64(), Payload: payload})
		}
		enc := b.Encode(nil)
		cut := int(cutFrac) % len(enc)
		_, _, err := DecodeRecordBatch(enc[:cut])
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: splitting any concatenation of frames at arbitrary chunk
// boundaries yields the original frames.
func TestPropertySplitterChunking(t *testing.T) {
	f := func(seed uint64, nFrames, chunkHint uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		count := int(nFrames%8) + 1
		var stream []byte
		var bodies [][]byte
		for i := 0; i < count; i++ {
			body := make([]byte, rng.IntN(100))
			for j := range body {
				body[j] = byte(rng.UintN(256))
			}
			bodies = append(bodies, body)
			stream = append(stream, EncodeFrame(uint16(i), body)...)
		}
		var s Splitter
		var frames []FramePart
		chunk := int(chunkHint%16) + 1
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			got, err := s.Push(stream[off:end])
			if err != nil {
				return false
			}
			for _, fr := range got {
				fr.Body = append([]byte(nil), fr.Body...)
				frames = append(frames, fr)
			}
		}
		if len(frames) != count {
			return false
		}
		for i, fr := range frames {
			if fr.API != uint16(i) || !bytes.Equal(fr.Body, bodies[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBatchEncode(b *testing.B) {
	batch := sampleBatch()
	buf := make([]byte, 0, batch.EncodedSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = batch.Encode(buf[:0])
	}
}

func BenchmarkBatchDecode(b *testing.B) {
	enc := sampleBatch().Encode(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRecordBatch(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// Allocation budget (issue 5): once a Decoder's scratch is warm and its
// Topic hint matches, decoding a produce request — record batch
// included — allocates nothing: topic strings intern against the hint,
// records land in the reused scratch slice, and payloads alias the
// source buffer.
func TestDecoderSteadyStateAllocs(t *testing.T) {
	req := ProduceRequest{
		CorrelationID: 42,
		Topic:         "events",
		Partition:     1,
		Acks:          AcksLeader,
		Batch:         sampleBatch(),
	}
	enc := req.Encode(nil)
	d := &Decoder{Topic: "events"}
	if _, err := d.ProduceRequest(enc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		got, err := d.ProduceRequest(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Batch.Records) != 3 {
			t.Fatalf("%d records", len(got.Batch.Records))
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state produce decode allocated %.1f per request, want 0", allocs)
	}
}

// CloneRecords must sever every alias into the decode source: after
// cloning, scribbling over the source buffer cannot reach the records.
func TestCloneRecordsSeversSourceAliases(t *testing.T) {
	enc := sampleBatch().Encode(nil)
	batch, _, err := DecodeRecordBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	cloned := CloneRecords(batch.Records)
	want := make([][]byte, len(cloned))
	for i, r := range cloned {
		want[i] = append([]byte(nil), r.Payload...)
	}
	for i := range enc {
		enc[i] = 0xFF
	}
	for i, r := range cloned {
		if !bytes.Equal(r.Payload, want[i]) {
			t.Errorf("record %d payload corrupted by source mutation: %x", i, r.Payload)
		}
	}
}
