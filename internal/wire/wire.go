// Package wire defines the Kafka-style binary protocol spoken between the
// producer/consumer models and the broker model: length-prefixed frames,
// correlation IDs, and CRC-protected record batches. The encoding is a
// simplified but faithful analogue of Kafka's protocol — big-endian fixed
// width integers, size-prefixed byte blobs — so that message sizes on the
// emulated network carry realistic framing overhead.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// API keys identify request types, mirroring Kafka's ApiKey field (the
// group-coordination keys use Kafka's real numbering).
const (
	APIProduce            uint16 = 0
	APIFetch              uint16 = 1
	APIMetadata           uint16 = 3
	APIOffsetCommit       uint16 = 8
	APIOffsetFetch        uint16 = 9
	APIJoinGroup          uint16 = 11
	APIHeartbeat          uint16 = 12
	APILeaveGroup         uint16 = 13
	APISyncGroup          uint16 = 14
	APIInitProducerID     uint16 = 22
	APIAddPartitionsToTxn uint16 = 24
	APIAddOffsetsToTxn    uint16 = 25
	APIEndTxn             uint16 = 26
	APITxnOffsetCommit    uint16 = 28
)

// ErrorCode is the broker-reported outcome of a request, mirroring
// Kafka's error_code response field.
type ErrorCode uint16

// Error codes. Values are stable on the wire.
const (
	ErrNone ErrorCode = iota
	ErrUnknownTopicOrPartition
	ErrNotLeader
	ErrRequestTimedOut
	ErrCorruptMessage
	ErrDuplicateSequence
	ErrBrokerUnavailable
	ErrNotEnoughReplicas
	ErrCoordinatorNotAvailable
	ErrIllegalGeneration
	ErrUnknownMemberID
	ErrRebalanceInProgress
	ErrNoCommittedOffset
	ErrProducerFenced
	ErrInvalidTxnState
	ErrConcurrentTransactions
)

// NumErrorCodes is the number of defined error codes; codes are
// contiguous from ErrNone, so fixed-size per-code tables can be indexed
// by the code value.
const NumErrorCodes = 16

// SeqCacheSize is the number of recent batch sequences a broker
// remembers per producer for idempotent de-duplication (Kafka keeps 5).
// Idempotent producers must keep MaxInFlight at or below it: a retry
// arriving after more than SeqCacheSize newer batches could no longer
// be recognised as a duplicate.
const SeqCacheSize = 16

var errorNames = map[ErrorCode]string{
	ErrNone:                    "NONE",
	ErrUnknownTopicOrPartition: "UNKNOWN_TOPIC_OR_PARTITION",
	ErrNotLeader:               "NOT_LEADER",
	ErrRequestTimedOut:         "REQUEST_TIMED_OUT",
	ErrCorruptMessage:          "CORRUPT_MESSAGE",
	ErrDuplicateSequence:       "DUPLICATE_SEQUENCE",
	ErrBrokerUnavailable:       "BROKER_UNAVAILABLE",
	ErrNotEnoughReplicas:       "NOT_ENOUGH_REPLICAS",
	ErrCoordinatorNotAvailable: "COORDINATOR_NOT_AVAILABLE",
	ErrIllegalGeneration:       "ILLEGAL_GENERATION",
	ErrUnknownMemberID:         "UNKNOWN_MEMBER_ID",
	ErrRebalanceInProgress:     "REBALANCE_IN_PROGRESS",
	ErrNoCommittedOffset:       "NO_COMMITTED_OFFSET",
	ErrProducerFenced:          "PRODUCER_FENCED",
	ErrInvalidTxnState:         "INVALID_TXN_STATE",
	ErrConcurrentTransactions:  "CONCURRENT_TRANSACTIONS",
}

// String implements fmt.Stringer.
func (e ErrorCode) String() string {
	if s, ok := errorNames[e]; ok {
		return s
	}
	return fmt.Sprintf("ERROR_%d", uint16(e))
}

// Retriable reports whether a producer may retry a request that failed
// with this code, following Kafka's retriable-exception taxonomy.
func (e ErrorCode) Retriable() bool {
	switch e {
	case ErrNotLeader, ErrRequestTimedOut, ErrBrokerUnavailable, ErrNotEnoughReplicas,
		ErrCoordinatorNotAvailable, ErrRebalanceInProgress, ErrConcurrentTransactions:
		return true
	default:
		return false
	}
}

// Decoding errors.
var (
	ErrShortBuffer = errors.New("wire: buffer too short")
	ErrBadCRC      = errors.New("wire: record batch CRC mismatch")
	ErrBadFrame    = errors.New("wire: malformed frame")
)

// Record is a single message: a unique key (the paper's "incremental
// message unique key", Sec. III-E), a producer timestamp, and an opaque
// payload whose length is the message size M.
type Record struct {
	Key       uint64
	Timestamp time.Duration // virtual time the record entered the producer
	Payload   []byte
}

// EncodedSize returns the wire size of the record in bytes.
func (r Record) EncodedSize() int {
	return 8 + 8 + 4 + len(r.Payload)
}

func (r Record) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, r.Key)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Timestamp))
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Payload)))
	return append(b, r.Payload...)
}

// decodeRecord parses one record. The returned payload is a zero-copy
// alias into b (capacity-capped so appends cannot scribble past it); see
// DecodeRecordBatch for the ownership contract.
func decodeRecord(b []byte) (Record, []byte, error) {
	if len(b) < 20 {
		return Record{}, nil, fmt.Errorf("record header: %w", ErrShortBuffer)
	}
	var r Record
	r.Key = binary.BigEndian.Uint64(b)
	r.Timestamp = time.Duration(binary.BigEndian.Uint64(b[8:]))
	n := int(binary.BigEndian.Uint32(b[16:]))
	b = b[20:]
	if len(b) < n {
		return Record{}, nil, fmt.Errorf("record payload (%d bytes): %w", n, ErrShortBuffer)
	}
	r.Payload = b[:n:n]
	return r, b[n:], nil
}

// RecordBatch is an ordered group of records protected by a CRC32-C
// checksum, as in Kafka's record-batch format. BaseSequence supports the
// idempotent-producer extension: brokers de-duplicate batches by
// (ProducerID, BaseSequence), but only when the batch's Idempotent flag
// is set. ProducerID itself is stamped on every batch — idempotent or
// not — so per-producer sequence streams stay distinguishable when
// several producers share a partition (the broker's duplicate-append
// observation relies on that).
//
// The transactional extension adds ProducerEpoch — the fencing token the
// transaction coordinator bumps on each InitProducerId, which brokers
// compare against the highest epoch they have seen for the producer —
// and two more flag bits: Transactional marks the batch as part of an
// open transaction (invisible at read_committed until a marker commits
// it), and Control marks a one-record commit/abort marker batch written
// by the transaction coordinator, never by a client.
type RecordBatch struct {
	ProducerID    uint64
	ProducerEpoch uint32
	BaseSequence  uint64
	Idempotent    bool
	Transactional bool
	Control       bool
	Records       []Record
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Batch flag bits.
const (
	batchFlagIdempotent    = 1 << 0
	batchFlagTransactional = 1 << 1
	batchFlagControl       = 1 << 2
)

// batchHeaderSize is the fixed batch header: producer id (8), producer
// epoch (4), base sequence (8), flags (1), record count (4), CRC (4).
const batchHeaderSize = 29

// EncodedSize returns the wire size of the batch in bytes.
func (b RecordBatch) EncodedSize() int {
	n := batchHeaderSize
	for _, r := range b.Records {
		n += r.EncodedSize()
	}
	return n
}

// Encode appends the batch encoding to dst and returns the result. The
// records are encoded directly into dst and the CRC is patched in
// afterwards, so encoding into a reused buffer allocates nothing.
func (b RecordBatch) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, b.ProducerID)
	dst = binary.BigEndian.AppendUint32(dst, b.ProducerEpoch)
	dst = binary.BigEndian.AppendUint64(dst, b.BaseSequence)
	var flags byte
	if b.Idempotent {
		flags |= batchFlagIdempotent
	}
	if b.Transactional {
		flags |= batchFlagTransactional
	}
	if b.Control {
		flags |= batchFlagControl
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b.Records)))
	crcAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // CRC placeholder, patched below
	bodyStart := len(dst)
	for _, r := range b.Records {
		dst = r.encode(dst)
	}
	binary.BigEndian.PutUint32(dst[crcAt:], crc32.Checksum(dst[bodyStart:], castagnoli))
	return dst
}

// CloneRecords deep-copies the payloads of recs into a single freshly
// allocated buffer and returns records aliasing it. Consumers that retain
// decoded records beyond the lifetime of the decode source buffer (for
// example across simulated time, or past the next Splitter.Push) must
// clone them; see DecodeRecordBatch for the ownership contract.
func CloneRecords(recs []Record) []Record {
	total := 0
	for _, r := range recs {
		total += len(r.Payload)
	}
	buf := make([]byte, 0, total)
	out := make([]Record, len(recs))
	for i, r := range recs {
		start := len(buf)
		buf = append(buf, r.Payload...)
		r.Payload = buf[start:len(buf):len(buf)]
		out[i] = r
	}
	return out
}

// DecodeRecordBatch parses a batch and verifies its CRC, returning the
// remaining bytes.
//
// Ownership: record payloads are zero-copy aliases into b. They remain
// valid exactly as long as b's bytes do — callers that decode from a
// reused or recycled buffer and retain the records must copy them first
// (CloneRecords). In particular, frame bodies returned by Splitter.Push
// are valid only until the next Push, so records decoded from split
// frames and retained past the current callback must be cloned.
func DecodeRecordBatch(b []byte) (RecordBatch, []byte, error) {
	return (*Decoder)(nil).recordBatch(b)
}

// recordBatch is DecodeRecordBatch decoding records into the decoder's
// reused scratch slice (see Decoder in messages.go).
func (d *Decoder) recordBatch(b []byte) (RecordBatch, []byte, error) {
	if len(b) < batchHeaderSize {
		return RecordBatch{}, nil, fmt.Errorf("batch header: %w", ErrShortBuffer)
	}
	var batch RecordBatch
	batch.ProducerID = binary.BigEndian.Uint64(b)
	batch.ProducerEpoch = binary.BigEndian.Uint32(b[8:])
	batch.BaseSequence = binary.BigEndian.Uint64(b[12:])
	flags := b[20]
	batch.Idempotent = flags&batchFlagIdempotent != 0
	batch.Transactional = flags&batchFlagTransactional != 0
	batch.Control = flags&batchFlagControl != 0
	count := int(binary.BigEndian.Uint32(b[21:]))
	crc := binary.BigEndian.Uint32(b[25:])
	b = b[batchHeaderSize:]
	start := b
	recs := d.recordScratch(count)
	for i := 0; i < count; i++ {
		r, rest, err := decodeRecord(b)
		if err != nil {
			return RecordBatch{}, nil, fmt.Errorf("record %d: %w", i, err)
		}
		recs = append(recs, r)
		b = rest
	}
	consumed := len(start) - len(b)
	if crc32.Checksum(start[:consumed], castagnoli) != crc {
		return RecordBatch{}, nil, ErrBadCRC
	}
	batch.Records = recs
	d.keepRecordScratch(recs)
	return batch, b, nil
}
