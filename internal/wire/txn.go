package wire

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Transaction-coordination messages, mirroring Kafka's transactional
// producer protocol: InitProducerId binds a transactional.id to a
// (ProducerID, ProducerEpoch) pair and fences zombies by bumping the
// epoch; AddPartitionsToTxn/AddOffsetsToTxn register the partitions and
// consumer group a transaction touches; TxnOffsetCommit stages consumed
// offsets inside the transaction; EndTxn commits or aborts, driving the
// coordinator's two-phase marker writes. Every fenced path answers
// ErrProducerFenced, which is fatal to the producer by contract.

// Control-record keys: a batch with the Control flag carries exactly one
// record whose Key names the marker type. Brokers interpret the marker
// to close the producer's ongoing transaction on that partition; readers
// never see control records at either isolation level.
const (
	ControlKeyCommit uint64 = 0
	ControlKeyAbort  uint64 = 1
)

// TxnPartition names one topic partition touched by a transaction.
type TxnPartition struct {
	Topic     string
	Partition int32
}

// TxnOffset is one consumed-offset commit staged inside a transaction.
type TxnOffset struct {
	Topic     string
	Partition int32
	Offset    int64
}

// ControlRecord builds the single record of a transaction-marker batch.
func ControlRecord(commit bool, at time.Duration) Record {
	key := ControlKeyAbort
	if commit {
		key = ControlKeyCommit
	}
	return Record{Key: key, Timestamp: at}
}

// InitProducerIDRequest asks the transaction coordinator for a producer
// id and a fresh epoch for a transactional.id. TxnTimeout is the
// longest the coordinator will let one of this producer's transactions
// stay open before aborting it (zero picks the coordinator default).
type InitProducerIDRequest struct {
	CorrelationID   uint32
	TransactionalID string
	TxnTimeout      time.Duration
}

// InitProducerIDResponse carries the assigned identity. Any transaction
// the transactional.id's previous holder left open has been aborted by
// the time this response is issued.
type InitProducerIDResponse struct {
	CorrelationID uint32
	ProducerID    uint64
	ProducerEpoch uint32
	Err           ErrorCode
}

// AddPartitionsToTxnRequest registers one topic partition with the
// current transaction before any data is produced to it — the
// coordinator must know every touched partition to place markers.
type AddPartitionsToTxnRequest struct {
	CorrelationID   uint32
	TransactionalID string
	ProducerID      uint64
	ProducerEpoch   uint32
	Topic           string
	Partition       int32
}

// AddPartitionsToTxnResponse acknowledges (or fences) a registration.
type AddPartitionsToTxnResponse struct {
	CorrelationID uint32
	Err           ErrorCode
}

// AddOffsetsToTxnRequest registers a consumer group whose offsets the
// transaction will commit atomically with its output.
type AddOffsetsToTxnRequest struct {
	CorrelationID   uint32
	TransactionalID string
	ProducerID      uint64
	ProducerEpoch   uint32
	Group           string
}

// AddOffsetsToTxnResponse acknowledges (or fences) the registration.
type AddOffsetsToTxnResponse struct {
	CorrelationID uint32
	Err           ErrorCode
}

// TxnOffsetCommitRequest stages one consumed position inside the
// transaction: it becomes durable in the group's offsets log only when
// the transaction commits, and is discarded on abort.
type TxnOffsetCommitRequest struct {
	CorrelationID   uint32
	TransactionalID string
	ProducerID      uint64
	ProducerEpoch   uint32
	Group           string
	Topic           string
	Partition       int32
	Offset          int64
}

// TxnOffsetCommitResponse acknowledges (or fences) a staged offset.
type TxnOffsetCommitResponse struct {
	CorrelationID uint32
	Err           ErrorCode
}

// EndTxnRequest finishes the current transaction: Commit selects the
// marker the coordinator writes into every registered partition.
type EndTxnRequest struct {
	CorrelationID   uint32
	TransactionalID string
	ProducerID      uint64
	ProducerEpoch   uint32
	Commit          bool
}

// EndTxnResponse reports the transaction outcome. ErrNone means the
// decision is durable and every marker and staged offset landed.
type EndTxnResponse struct {
	CorrelationID uint32
	Err           ErrorCode
}

// Encode serialises the request body.
func (r InitProducerIDRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.TransactionalID)
	return binary.BigEndian.AppendUint64(dst, uint64(r.TxnTimeout))
}

// EncodedSize returns the wire size of the request body.
func (r InitProducerIDRequest) EncodedSize() int {
	return 4 + 2 + len(r.TransactionalID) + 8
}

// DecodeInitProducerIDRequest parses a request body produced by Encode.
func DecodeInitProducerIDRequest(b []byte) (InitProducerIDRequest, error) {
	var r InitProducerIDRequest
	if len(b) < 4 {
		return r, fmt.Errorf("init-producer-id correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	tid, b, err := decodeString(b[4:])
	if err != nil {
		return r, fmt.Errorf("init-producer-id transactional id: %w", err)
	}
	r.TransactionalID = tid
	if len(b) != 8 {
		return r, fmt.Errorf("init-producer-id tail: %w", ErrBadFrame)
	}
	r.TxnTimeout = time.Duration(binary.BigEndian.Uint64(b))
	return r, nil
}

// Encode serialises the response body.
func (r InitProducerIDResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = binary.BigEndian.AppendUint64(dst, r.ProducerID)
	dst = binary.BigEndian.AppendUint32(dst, r.ProducerEpoch)
	return binary.BigEndian.AppendUint16(dst, uint16(r.Err))
}

// EncodedSize returns the wire size of the response body.
func (r InitProducerIDResponse) EncodedSize() int { return 4 + 8 + 4 + 2 }

// DecodeInitProducerIDResponse parses a response body produced by Encode.
func DecodeInitProducerIDResponse(b []byte) (InitProducerIDResponse, error) {
	var r InitProducerIDResponse
	if len(b) != 18 {
		return r, fmt.Errorf("init-producer-id-response: %w", ErrBadFrame)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	r.ProducerID = binary.BigEndian.Uint64(b[4:])
	r.ProducerEpoch = binary.BigEndian.Uint32(b[12:])
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[16:]))
	return r, nil
}

// appendTxnIdentity encodes the (transactional.id, producer id, epoch)
// triple every in-transaction request carries.
func appendTxnIdentity(dst []byte, tid string, pid uint64, epoch uint32) []byte {
	dst = appendString(dst, tid)
	dst = binary.BigEndian.AppendUint64(dst, pid)
	return binary.BigEndian.AppendUint32(dst, epoch)
}

// decodeTxnIdentity parses the triple written by appendTxnIdentity.
func decodeTxnIdentity(b []byte) (tid string, pid uint64, epoch uint32, rest []byte, err error) {
	tid, b, err = decodeString(b)
	if err != nil {
		return "", 0, 0, nil, err
	}
	if len(b) < 12 {
		return "", 0, 0, nil, fmt.Errorf("txn identity: %w", ErrShortBuffer)
	}
	pid = binary.BigEndian.Uint64(b)
	epoch = binary.BigEndian.Uint32(b[8:])
	return tid, pid, epoch, b[12:], nil
}

// Encode serialises the request body.
func (r AddPartitionsToTxnRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendTxnIdentity(dst, r.TransactionalID, r.ProducerID, r.ProducerEpoch)
	dst = appendString(dst, r.Topic)
	return binary.BigEndian.AppendUint32(dst, uint32(r.Partition))
}

// EncodedSize returns the wire size of the request body.
func (r AddPartitionsToTxnRequest) EncodedSize() int {
	return 4 + 2 + len(r.TransactionalID) + 12 + 2 + len(r.Topic) + 4
}

// DecodeAddPartitionsToTxnRequest parses a request body produced by
// Encode.
func DecodeAddPartitionsToTxnRequest(b []byte) (AddPartitionsToTxnRequest, error) {
	var r AddPartitionsToTxnRequest
	if len(b) < 4 {
		return r, fmt.Errorf("add-partitions-to-txn correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	var err error
	r.TransactionalID, r.ProducerID, r.ProducerEpoch, b, err = decodeTxnIdentity(b[4:])
	if err != nil {
		return r, fmt.Errorf("add-partitions-to-txn: %w", err)
	}
	if r.Topic, b, err = decodeString(b); err != nil {
		return r, fmt.Errorf("add-partitions-to-txn topic: %w", err)
	}
	if len(b) != 4 {
		return r, fmt.Errorf("add-partitions-to-txn tail: %w", ErrBadFrame)
	}
	r.Partition = int32(binary.BigEndian.Uint32(b))
	return r, nil
}

// Encode serialises the response body.
func (r AddPartitionsToTxnResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	return binary.BigEndian.AppendUint16(dst, uint16(r.Err))
}

// EncodedSize returns the wire size of the response body.
func (r AddPartitionsToTxnResponse) EncodedSize() int { return 4 + 2 }

// DecodeAddPartitionsToTxnResponse parses a response body produced by
// Encode.
func DecodeAddPartitionsToTxnResponse(b []byte) (AddPartitionsToTxnResponse, error) {
	var r AddPartitionsToTxnResponse
	if len(b) != 6 {
		return r, fmt.Errorf("add-partitions-to-txn-response: %w", ErrBadFrame)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[4:]))
	return r, nil
}

// Encode serialises the request body.
func (r AddOffsetsToTxnRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendTxnIdentity(dst, r.TransactionalID, r.ProducerID, r.ProducerEpoch)
	return appendString(dst, r.Group)
}

// EncodedSize returns the wire size of the request body.
func (r AddOffsetsToTxnRequest) EncodedSize() int {
	return 4 + 2 + len(r.TransactionalID) + 12 + 2 + len(r.Group)
}

// DecodeAddOffsetsToTxnRequest parses a request body produced by Encode.
func DecodeAddOffsetsToTxnRequest(b []byte) (AddOffsetsToTxnRequest, error) {
	var r AddOffsetsToTxnRequest
	if len(b) < 4 {
		return r, fmt.Errorf("add-offsets-to-txn correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	var err error
	r.TransactionalID, r.ProducerID, r.ProducerEpoch, b, err = decodeTxnIdentity(b[4:])
	if err != nil {
		return r, fmt.Errorf("add-offsets-to-txn: %w", err)
	}
	if r.Group, b, err = decodeString(b); err != nil {
		return r, fmt.Errorf("add-offsets-to-txn group: %w", err)
	}
	if len(b) != 0 {
		return r, fmt.Errorf("add-offsets-to-txn trailing %d bytes: %w", len(b), ErrBadFrame)
	}
	return r, nil
}

// Encode serialises the response body.
func (r AddOffsetsToTxnResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	return binary.BigEndian.AppendUint16(dst, uint16(r.Err))
}

// EncodedSize returns the wire size of the response body.
func (r AddOffsetsToTxnResponse) EncodedSize() int { return 4 + 2 }

// DecodeAddOffsetsToTxnResponse parses a response body produced by
// Encode.
func DecodeAddOffsetsToTxnResponse(b []byte) (AddOffsetsToTxnResponse, error) {
	var r AddOffsetsToTxnResponse
	if len(b) != 6 {
		return r, fmt.Errorf("add-offsets-to-txn-response: %w", ErrBadFrame)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[4:]))
	return r, nil
}

// Encode serialises the request body.
func (r TxnOffsetCommitRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendTxnIdentity(dst, r.TransactionalID, r.ProducerID, r.ProducerEpoch)
	dst = appendString(dst, r.Group)
	dst = appendString(dst, r.Topic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Partition))
	return binary.BigEndian.AppendUint64(dst, uint64(r.Offset))
}

// EncodedSize returns the wire size of the request body.
func (r TxnOffsetCommitRequest) EncodedSize() int {
	return 4 + 2 + len(r.TransactionalID) + 12 + 2 + len(r.Group) + 2 + len(r.Topic) + 4 + 8
}

// DecodeTxnOffsetCommitRequest parses a request body produced by Encode.
func DecodeTxnOffsetCommitRequest(b []byte) (TxnOffsetCommitRequest, error) {
	var r TxnOffsetCommitRequest
	if len(b) < 4 {
		return r, fmt.Errorf("txn-offset-commit correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	var err error
	r.TransactionalID, r.ProducerID, r.ProducerEpoch, b, err = decodeTxnIdentity(b[4:])
	if err != nil {
		return r, fmt.Errorf("txn-offset-commit: %w", err)
	}
	if r.Group, b, err = decodeString(b); err != nil {
		return r, fmt.Errorf("txn-offset-commit group: %w", err)
	}
	if r.Topic, b, err = decodeString(b); err != nil {
		return r, fmt.Errorf("txn-offset-commit topic: %w", err)
	}
	if len(b) != 12 {
		return r, fmt.Errorf("txn-offset-commit tail: %w", ErrBadFrame)
	}
	r.Partition = int32(binary.BigEndian.Uint32(b))
	r.Offset = int64(binary.BigEndian.Uint64(b[4:]))
	return r, nil
}

// Encode serialises the response body.
func (r TxnOffsetCommitResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	return binary.BigEndian.AppendUint16(dst, uint16(r.Err))
}

// EncodedSize returns the wire size of the response body.
func (r TxnOffsetCommitResponse) EncodedSize() int { return 4 + 2 }

// DecodeTxnOffsetCommitResponse parses a response body produced by
// Encode.
func DecodeTxnOffsetCommitResponse(b []byte) (TxnOffsetCommitResponse, error) {
	var r TxnOffsetCommitResponse
	if len(b) != 6 {
		return r, fmt.Errorf("txn-offset-commit-response: %w", ErrBadFrame)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[4:]))
	return r, nil
}

// Encode serialises the request body.
func (r EndTxnRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendTxnIdentity(dst, r.TransactionalID, r.ProducerID, r.ProducerEpoch)
	commit := byte(0)
	if r.Commit {
		commit = 1
	}
	return append(dst, commit)
}

// EncodedSize returns the wire size of the request body.
func (r EndTxnRequest) EncodedSize() int {
	return 4 + 2 + len(r.TransactionalID) + 12 + 1
}

// DecodeEndTxnRequest parses a request body produced by Encode.
func DecodeEndTxnRequest(b []byte) (EndTxnRequest, error) {
	var r EndTxnRequest
	if len(b) < 4 {
		return r, fmt.Errorf("end-txn correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	var err error
	r.TransactionalID, r.ProducerID, r.ProducerEpoch, b, err = decodeTxnIdentity(b[4:])
	if err != nil {
		return r, fmt.Errorf("end-txn: %w", err)
	}
	if len(b) != 1 {
		return r, fmt.Errorf("end-txn tail: %w", ErrBadFrame)
	}
	r.Commit = b[0] != 0
	return r, nil
}

// Encode serialises the response body.
func (r EndTxnResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	return binary.BigEndian.AppendUint16(dst, uint16(r.Err))
}

// EncodedSize returns the wire size of the response body.
func (r EndTxnResponse) EncodedSize() int { return 4 + 2 }

// DecodeEndTxnResponse parses a response body produced by Encode.
func DecodeEndTxnResponse(b []byte) (EndTxnResponse, error) {
	var r EndTxnResponse
	if len(b) != 6 {
		return r, fmt.Errorf("end-txn-response: %w", ErrBadFrame)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[4:]))
	return r, nil
}
