package wire

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Group-coordination messages, mirroring Kafka's consumer-group
// protocol: JoinGroup/SyncGroup establish membership and partition
// assignment under a monotonically increasing generation id,
// Heartbeat/LeaveGroup maintain it, and OffsetCommit/OffsetFetch move
// committed offsets through the coordinator's durable offsets log.
// Every fenced path (stale generation, unknown member, rebalance in
// progress) is reported through the error codes in wire.go.

// OffsetCommitRequest durably records a consumed position: the *next*
// offset to read for one partition, fenced by (member, generation).
type OffsetCommitRequest struct {
	CorrelationID uint32
	Group         string
	MemberID      string
	Generation    int32
	Topic         string
	Partition     int32
	Offset        int64
}

// OffsetCommitResponse acknowledges (or fences) an offset commit.
type OffsetCommitResponse struct {
	CorrelationID uint32
	Group         string
	Topic         string
	Partition     int32
	Err           ErrorCode
}

// OffsetFetchRequest reads the group's committed offset for a
// partition. A non-empty MemberID makes the fetch generation-fenced
// like a commit (a stale member must not resume from an offset it no
// longer owns); an empty MemberID is an administrative read.
type OffsetFetchRequest struct {
	CorrelationID uint32
	Group         string
	MemberID      string
	Generation    int32
	Topic         string
	Partition     int32
}

// OffsetFetchResponse returns the committed offset and the generation
// that committed it. A partition with no committed offset answers
// ErrNoCommittedOffset — not offset zero, which a restarting consumer
// could not tell apart from a real position.
type OffsetFetchResponse struct {
	CorrelationID uint32
	Group         string
	Topic         string
	Partition     int32
	Offset        int64
	Generation    int32
	Err           ErrorCode
}

// JoinGroupRequest asks the coordinator to admit a member. An empty
// MemberID requests a coordinator-assigned id (first join). A non-empty
// GroupInstanceID makes the membership static (Kafka's
// group.instance.id): a restarting process that rejoins with the same
// instance id inside its session timeout takes over the old member's
// identity and assignment without triggering a rebalance.
type JoinGroupRequest struct {
	CorrelationID   uint32
	Group           string
	MemberID        string
	GroupInstanceID string
	Topic           string
	SessionTimeout  time.Duration
	// Protocol selects the member's rebalance protocol: ProtocolEager
	// (stop-the-world revoke-all) or ProtocolCooperative (KIP-429
	// incremental). The coordinator assigns incrementally only when every
	// joined member speaks cooperative.
	Protocol uint8
	// OwnedPartitions lists the partitions the member still owns when it
	// (re)joins — the cooperative assignor's input: partitions owned by
	// another live member are withheld from their new target owner until
	// a follow-up rebalance observes them released. Eager members leave
	// it empty (they revoke everything before joining).
	OwnedPartitions []int32
}

// Rebalance protocols carried in JoinGroupRequest.Protocol.
const (
	ProtocolEager       uint8 = 0
	ProtocolCooperative uint8 = 1
)

// JoinGroupResponse completes a join once the rebalance barrier opens:
// the new generation, the member's (possibly coordinator-assigned) id,
// and the full member list in assignment order.
type JoinGroupResponse struct {
	CorrelationID uint32
	Group         string
	Generation    int32
	MemberID      string
	Leader        string
	Members       []string
	Err           ErrorCode
}

// SyncGroupRequest fetches the member's partition assignment for a
// generation.
type SyncGroupRequest struct {
	CorrelationID uint32
	Group         string
	MemberID      string
	Generation    int32
}

// SyncGroupResponse carries the coordinator-computed assignment.
type SyncGroupResponse struct {
	CorrelationID uint32
	Group         string
	Generation    int32
	Assigned      []int32
	Err           ErrorCode
}

// HeartbeatRequest keeps a member's session alive and learns about
// pending rebalances (ErrRebalanceInProgress).
type HeartbeatRequest struct {
	CorrelationID uint32
	Group         string
	MemberID      string
	Generation    int32
}

// HeartbeatResponse answers a heartbeat.
type HeartbeatResponse struct {
	CorrelationID uint32
	Err           ErrorCode
}

// LeaveGroupRequest announces a clean departure, triggering an
// immediate rebalance instead of a session-timeout wait.
type LeaveGroupRequest struct {
	CorrelationID uint32
	Group         string
	MemberID      string
}

// LeaveGroupResponse answers a leave.
type LeaveGroupResponse struct {
	CorrelationID uint32
	Err           ErrorCode
}

// Encode serialises the request body.
func (r OffsetCommitRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Group)
	dst = appendString(dst, r.MemberID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Generation))
	dst = appendString(dst, r.Topic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Partition))
	return binary.BigEndian.AppendUint64(dst, uint64(r.Offset))
}

// EncodedSize returns the wire size of the request body.
func (r OffsetCommitRequest) EncodedSize() int {
	return 4 + 2 + len(r.Group) + 2 + len(r.MemberID) + 4 + 2 + len(r.Topic) + 4 + 8
}

// DecodeOffsetCommitRequest parses a request body produced by Encode.
func DecodeOffsetCommitRequest(b []byte) (OffsetCommitRequest, error) {
	return (*Decoder)(nil).OffsetCommitRequest(b)
}

// OffsetCommitRequest is DecodeOffsetCommitRequest with group, member
// and topic interning; a primed decoder parses it with zero
// allocations.
func (d *Decoder) OffsetCommitRequest(b []byte) (OffsetCommitRequest, error) {
	var r OffsetCommitRequest
	if len(b) < 4 {
		return r, fmt.Errorf("offset-commit correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	var err error
	if r.Group, b, err = d.decodeInterned(b, d.groupIntern()); err != nil {
		return r, fmt.Errorf("offset-commit group: %w", err)
	}
	if r.MemberID, b, err = d.decodeInterned(b, d.memberIntern()); err != nil {
		return r, fmt.Errorf("offset-commit member: %w", err)
	}
	if len(b) < 4 {
		return r, fmt.Errorf("offset-commit generation: %w", ErrShortBuffer)
	}
	r.Generation = int32(binary.BigEndian.Uint32(b))
	b = b[4:]
	if r.Topic, b, err = d.decodeString(b); err != nil {
		return r, fmt.Errorf("offset-commit topic: %w", err)
	}
	if len(b) != 12 {
		return r, fmt.Errorf("offset-commit tail: %w", ErrBadFrame)
	}
	r.Partition = int32(binary.BigEndian.Uint32(b))
	r.Offset = int64(binary.BigEndian.Uint64(b[4:]))
	return r, nil
}

// Encode serialises the response body.
func (r OffsetCommitResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Group)
	dst = appendString(dst, r.Topic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Partition))
	return binary.BigEndian.AppendUint16(dst, uint16(r.Err))
}

// EncodedSize returns the wire size of the response body.
func (r OffsetCommitResponse) EncodedSize() int {
	return 4 + 2 + len(r.Group) + 2 + len(r.Topic) + 4 + 2
}

// DecodeOffsetCommitResponse parses a response body produced by Encode.
func DecodeOffsetCommitResponse(b []byte) (OffsetCommitResponse, error) {
	return (*Decoder)(nil).OffsetCommitResponse(b)
}

// OffsetCommitResponse is DecodeOffsetCommitResponse with group and
// topic interning.
func (d *Decoder) OffsetCommitResponse(b []byte) (OffsetCommitResponse, error) {
	var r OffsetCommitResponse
	if len(b) < 4 {
		return r, fmt.Errorf("offset-commit-response correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	var err error
	if r.Group, b, err = d.decodeInterned(b, d.groupIntern()); err != nil {
		return r, fmt.Errorf("offset-commit-response group: %w", err)
	}
	if r.Topic, b, err = d.decodeString(b); err != nil {
		return r, fmt.Errorf("offset-commit-response topic: %w", err)
	}
	if len(b) != 6 {
		return r, fmt.Errorf("offset-commit-response tail: %w", ErrBadFrame)
	}
	r.Partition = int32(binary.BigEndian.Uint32(b))
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[4:]))
	return r, nil
}

// Encode serialises the request body.
func (r OffsetFetchRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Group)
	dst = appendString(dst, r.MemberID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Generation))
	dst = appendString(dst, r.Topic)
	return binary.BigEndian.AppendUint32(dst, uint32(r.Partition))
}

// EncodedSize returns the wire size of the request body.
func (r OffsetFetchRequest) EncodedSize() int {
	return 4 + 2 + len(r.Group) + 2 + len(r.MemberID) + 4 + 2 + len(r.Topic) + 4
}

// DecodeOffsetFetchRequest parses a request body produced by Encode.
func DecodeOffsetFetchRequest(b []byte) (OffsetFetchRequest, error) {
	return (*Decoder)(nil).OffsetFetchRequest(b)
}

// OffsetFetchRequest is DecodeOffsetFetchRequest with group, member and
// topic interning.
func (d *Decoder) OffsetFetchRequest(b []byte) (OffsetFetchRequest, error) {
	var r OffsetFetchRequest
	if len(b) < 4 {
		return r, fmt.Errorf("offset-fetch correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	var err error
	if r.Group, b, err = d.decodeInterned(b, d.groupIntern()); err != nil {
		return r, fmt.Errorf("offset-fetch group: %w", err)
	}
	if r.MemberID, b, err = d.decodeInterned(b, d.memberIntern()); err != nil {
		return r, fmt.Errorf("offset-fetch member: %w", err)
	}
	if len(b) < 4 {
		return r, fmt.Errorf("offset-fetch generation: %w", ErrShortBuffer)
	}
	r.Generation = int32(binary.BigEndian.Uint32(b))
	b = b[4:]
	if r.Topic, b, err = d.decodeString(b); err != nil {
		return r, fmt.Errorf("offset-fetch topic: %w", err)
	}
	if len(b) != 4 {
		return r, fmt.Errorf("offset-fetch tail: %w", ErrBadFrame)
	}
	r.Partition = int32(binary.BigEndian.Uint32(b))
	return r, nil
}

// Encode serialises the response body.
func (r OffsetFetchResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Group)
	dst = appendString(dst, r.Topic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Partition))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Offset))
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Generation))
	return binary.BigEndian.AppendUint16(dst, uint16(r.Err))
}

// EncodedSize returns the wire size of the response body.
func (r OffsetFetchResponse) EncodedSize() int {
	return 4 + 2 + len(r.Group) + 2 + len(r.Topic) + 4 + 8 + 4 + 2
}

// DecodeOffsetFetchResponse parses a response body produced by Encode.
func DecodeOffsetFetchResponse(b []byte) (OffsetFetchResponse, error) {
	return (*Decoder)(nil).OffsetFetchResponse(b)
}

// OffsetFetchResponse is DecodeOffsetFetchResponse with group and topic
// interning.
func (d *Decoder) OffsetFetchResponse(b []byte) (OffsetFetchResponse, error) {
	var r OffsetFetchResponse
	if len(b) < 4 {
		return r, fmt.Errorf("offset-fetch-response correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	var err error
	if r.Group, b, err = d.decodeInterned(b, d.groupIntern()); err != nil {
		return r, fmt.Errorf("offset-fetch-response group: %w", err)
	}
	if r.Topic, b, err = d.decodeString(b); err != nil {
		return r, fmt.Errorf("offset-fetch-response topic: %w", err)
	}
	if len(b) != 18 {
		return r, fmt.Errorf("offset-fetch-response tail: %w", ErrBadFrame)
	}
	r.Partition = int32(binary.BigEndian.Uint32(b))
	r.Offset = int64(binary.BigEndian.Uint64(b[4:]))
	r.Generation = int32(binary.BigEndian.Uint32(b[12:]))
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[16:]))
	return r, nil
}

// Encode serialises the request body.
func (r JoinGroupRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Group)
	dst = appendString(dst, r.MemberID)
	dst = appendString(dst, r.GroupInstanceID)
	dst = appendString(dst, r.Topic)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.SessionTimeout))
	dst = append(dst, r.Protocol)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.OwnedPartitions)))
	for _, p := range r.OwnedPartitions {
		dst = binary.BigEndian.AppendUint32(dst, uint32(p))
	}
	return dst
}

// EncodedSize returns the wire size of the request body.
func (r JoinGroupRequest) EncodedSize() int {
	return 4 + 2 + len(r.Group) + 2 + len(r.MemberID) + 2 + len(r.GroupInstanceID) +
		2 + len(r.Topic) + 8 + 1 + 4 + 4*len(r.OwnedPartitions)
}

// DecodeJoinGroupRequest parses a request body produced by Encode.
func DecodeJoinGroupRequest(b []byte) (JoinGroupRequest, error) {
	return (*Decoder)(nil).JoinGroupRequest(b)
}

// JoinGroupRequest is DecodeJoinGroupRequest with group, member and
// topic interning.
func (d *Decoder) JoinGroupRequest(b []byte) (JoinGroupRequest, error) {
	var r JoinGroupRequest
	if len(b) < 4 {
		return r, fmt.Errorf("join-group correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	var err error
	if r.Group, b, err = d.decodeInterned(b, d.groupIntern()); err != nil {
		return r, fmt.Errorf("join-group group: %w", err)
	}
	if r.MemberID, b, err = d.decodeInterned(b, d.memberIntern()); err != nil {
		return r, fmt.Errorf("join-group member: %w", err)
	}
	if r.GroupInstanceID, b, err = d.decodeString(b); err != nil {
		return r, fmt.Errorf("join-group instance id: %w", err)
	}
	if r.Topic, b, err = d.decodeString(b); err != nil {
		return r, fmt.Errorf("join-group topic: %w", err)
	}
	if len(b) < 13 {
		return r, fmt.Errorf("join-group tail: %w", ErrBadFrame)
	}
	r.SessionTimeout = time.Duration(binary.BigEndian.Uint64(b))
	r.Protocol = b[8]
	count := int(binary.BigEndian.Uint32(b[9:]))
	b = b[13:]
	if len(b) != 4*count {
		return r, fmt.Errorf("join-group owned partitions: %w", ErrBadFrame)
	}
	if count > 0 {
		r.OwnedPartitions = make([]int32, count)
		for i := range r.OwnedPartitions {
			r.OwnedPartitions[i] = int32(binary.BigEndian.Uint32(b[4*i:]))
		}
	}
	return r, nil
}

// Encode serialises the response body.
func (r JoinGroupResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Group)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Generation))
	dst = appendString(dst, r.MemberID)
	dst = appendString(dst, r.Leader)
	dst = binary.BigEndian.AppendUint16(dst, uint16(r.Err))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Members)))
	for _, m := range r.Members {
		dst = appendString(dst, m)
	}
	return dst
}

// EncodedSize returns the wire size of the response body.
func (r JoinGroupResponse) EncodedSize() int {
	n := 4 + 2 + len(r.Group) + 4 + 2 + len(r.MemberID) + 2 + len(r.Leader) + 2 + 4
	for _, m := range r.Members {
		n += 2 + len(m)
	}
	return n
}

// DecodeJoinGroupResponse parses a response body produced by Encode.
func DecodeJoinGroupResponse(b []byte) (JoinGroupResponse, error) {
	return (*Decoder)(nil).JoinGroupResponse(b)
}

// JoinGroupResponse is DecodeJoinGroupResponse with group and member
// interning. The member list allocates; joins are the rebalance cold
// path.
func (d *Decoder) JoinGroupResponse(b []byte) (JoinGroupResponse, error) {
	var r JoinGroupResponse
	if len(b) < 4 {
		return r, fmt.Errorf("join-group-response correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	var err error
	if r.Group, b, err = d.decodeInterned(b, d.groupIntern()); err != nil {
		return r, fmt.Errorf("join-group-response group: %w", err)
	}
	if len(b) < 4 {
		return r, fmt.Errorf("join-group-response generation: %w", ErrShortBuffer)
	}
	r.Generation = int32(binary.BigEndian.Uint32(b))
	b = b[4:]
	if r.MemberID, b, err = d.decodeInterned(b, d.memberIntern()); err != nil {
		return r, fmt.Errorf("join-group-response member: %w", err)
	}
	if r.Leader, b, err = d.decodeString(b); err != nil {
		return r, fmt.Errorf("join-group-response leader: %w", err)
	}
	if len(b) < 6 {
		return r, fmt.Errorf("join-group-response tail: %w", ErrShortBuffer)
	}
	r.Err = ErrorCode(binary.BigEndian.Uint16(b))
	count := int(binary.BigEndian.Uint32(b[2:]))
	b = b[6:]
	if count > 0 {
		r.Members = make([]string, 0, count)
	}
	for i := 0; i < count; i++ {
		var m string
		if m, b, err = d.decodeString(b); err != nil {
			return r, fmt.Errorf("join-group-response member %d: %w", i, err)
		}
		r.Members = append(r.Members, m)
	}
	if len(b) != 0 {
		return r, fmt.Errorf("join-group-response trailing %d bytes: %w", len(b), ErrBadFrame)
	}
	return r, nil
}

// Encode serialises the request body.
func (r SyncGroupRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Group)
	dst = appendString(dst, r.MemberID)
	return binary.BigEndian.AppendUint32(dst, uint32(r.Generation))
}

// EncodedSize returns the wire size of the request body.
func (r SyncGroupRequest) EncodedSize() int {
	return 4 + 2 + len(r.Group) + 2 + len(r.MemberID) + 4
}

// DecodeSyncGroupRequest parses a request body produced by Encode.
func DecodeSyncGroupRequest(b []byte) (SyncGroupRequest, error) {
	return (*Decoder)(nil).SyncGroupRequest(b)
}

// SyncGroupRequest is DecodeSyncGroupRequest with group and member
// interning.
func (d *Decoder) SyncGroupRequest(b []byte) (SyncGroupRequest, error) {
	var r SyncGroupRequest
	if len(b) < 4 {
		return r, fmt.Errorf("sync-group correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	var err error
	if r.Group, b, err = d.decodeInterned(b, d.groupIntern()); err != nil {
		return r, fmt.Errorf("sync-group group: %w", err)
	}
	if r.MemberID, b, err = d.decodeInterned(b, d.memberIntern()); err != nil {
		return r, fmt.Errorf("sync-group member: %w", err)
	}
	if len(b) != 4 {
		return r, fmt.Errorf("sync-group tail: %w", ErrBadFrame)
	}
	r.Generation = int32(binary.BigEndian.Uint32(b))
	return r, nil
}

// Encode serialises the response body.
func (r SyncGroupResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Group)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Generation))
	dst = binary.BigEndian.AppendUint16(dst, uint16(r.Err))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Assigned)))
	for _, p := range r.Assigned {
		dst = binary.BigEndian.AppendUint32(dst, uint32(p))
	}
	return dst
}

// EncodedSize returns the wire size of the response body.
func (r SyncGroupResponse) EncodedSize() int {
	return 4 + 2 + len(r.Group) + 4 + 2 + 4 + 4*len(r.Assigned)
}

// DecodeSyncGroupResponse parses a response body produced by Encode.
func DecodeSyncGroupResponse(b []byte) (SyncGroupResponse, error) {
	return (*Decoder)(nil).SyncGroupResponse(b)
}

// SyncGroupResponse is DecodeSyncGroupResponse with group interning.
func (d *Decoder) SyncGroupResponse(b []byte) (SyncGroupResponse, error) {
	var r SyncGroupResponse
	if len(b) < 4 {
		return r, fmt.Errorf("sync-group-response correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	var err error
	if r.Group, b, err = d.decodeInterned(b, d.groupIntern()); err != nil {
		return r, fmt.Errorf("sync-group-response group: %w", err)
	}
	if len(b) < 10 {
		return r, fmt.Errorf("sync-group-response header: %w", ErrShortBuffer)
	}
	r.Generation = int32(binary.BigEndian.Uint32(b))
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[4:]))
	count := int(binary.BigEndian.Uint32(b[6:]))
	b = b[10:]
	if len(b) != 4*count {
		return r, fmt.Errorf("sync-group-response assignment: %w", ErrBadFrame)
	}
	if count > 0 {
		r.Assigned = make([]int32, 0, count)
	}
	for i := 0; i < count; i++ {
		r.Assigned = append(r.Assigned, int32(binary.BigEndian.Uint32(b)))
		b = b[4:]
	}
	return r, nil
}

// Encode serialises the request body.
func (r HeartbeatRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Group)
	dst = appendString(dst, r.MemberID)
	return binary.BigEndian.AppendUint32(dst, uint32(r.Generation))
}

// EncodedSize returns the wire size of the request body.
func (r HeartbeatRequest) EncodedSize() int {
	return 4 + 2 + len(r.Group) + 2 + len(r.MemberID) + 4
}

// DecodeHeartbeatRequest parses a request body produced by Encode.
func DecodeHeartbeatRequest(b []byte) (HeartbeatRequest, error) {
	return (*Decoder)(nil).HeartbeatRequest(b)
}

// HeartbeatRequest is DecodeHeartbeatRequest with group and member
// interning; a primed decoder parses it with zero allocations.
func (d *Decoder) HeartbeatRequest(b []byte) (HeartbeatRequest, error) {
	var r HeartbeatRequest
	if len(b) < 4 {
		return r, fmt.Errorf("heartbeat correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	var err error
	if r.Group, b, err = d.decodeInterned(b, d.groupIntern()); err != nil {
		return r, fmt.Errorf("heartbeat group: %w", err)
	}
	if r.MemberID, b, err = d.decodeInterned(b, d.memberIntern()); err != nil {
		return r, fmt.Errorf("heartbeat member: %w", err)
	}
	if len(b) != 4 {
		return r, fmt.Errorf("heartbeat tail: %w", ErrBadFrame)
	}
	r.Generation = int32(binary.BigEndian.Uint32(b))
	return r, nil
}

// Encode serialises the response body.
func (r HeartbeatResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	return binary.BigEndian.AppendUint16(dst, uint16(r.Err))
}

// EncodedSize returns the wire size of the response body.
func (r HeartbeatResponse) EncodedSize() int { return 4 + 2 }

// DecodeHeartbeatResponse parses a response body produced by Encode.
func DecodeHeartbeatResponse(b []byte) (HeartbeatResponse, error) {
	var r HeartbeatResponse
	if len(b) != 6 {
		return r, fmt.Errorf("heartbeat-response: %w", ErrBadFrame)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[4:]))
	return r, nil
}

// Encode serialises the request body.
func (r LeaveGroupRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Group)
	return appendString(dst, r.MemberID)
}

// EncodedSize returns the wire size of the request body.
func (r LeaveGroupRequest) EncodedSize() int {
	return 4 + 2 + len(r.Group) + 2 + len(r.MemberID)
}

// DecodeLeaveGroupRequest parses a request body produced by Encode.
func DecodeLeaveGroupRequest(b []byte) (LeaveGroupRequest, error) {
	return (*Decoder)(nil).LeaveGroupRequest(b)
}

// LeaveGroupRequest is DecodeLeaveGroupRequest with group and member
// interning.
func (d *Decoder) LeaveGroupRequest(b []byte) (LeaveGroupRequest, error) {
	var r LeaveGroupRequest
	if len(b) < 4 {
		return r, fmt.Errorf("leave-group correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	var err error
	if r.Group, b, err = d.decodeInterned(b, d.groupIntern()); err != nil {
		return r, fmt.Errorf("leave-group group: %w", err)
	}
	if r.MemberID, b, err = d.decodeInterned(b, d.memberIntern()); err != nil {
		return r, fmt.Errorf("leave-group member: %w", err)
	}
	if len(b) != 0 {
		return r, fmt.Errorf("leave-group trailing %d bytes: %w", len(b), ErrBadFrame)
	}
	return r, nil
}

// Encode serialises the response body.
func (r LeaveGroupResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	return binary.BigEndian.AppendUint16(dst, uint16(r.Err))
}

// EncodedSize returns the wire size of the response body.
func (r LeaveGroupResponse) EncodedSize() int { return 4 + 2 }

// DecodeLeaveGroupResponse parses a response body produced by Encode.
func DecodeLeaveGroupResponse(b []byte) (LeaveGroupResponse, error) {
	var r LeaveGroupResponse
	if len(b) != 6 {
		return r, fmt.Errorf("leave-group-response: %w", ErrBadFrame)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[4:]))
	return r, nil
}
