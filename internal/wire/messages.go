package wire

import (
	"encoding/binary"
	"fmt"
)

// RequiredAcks mirrors the producer "acks" setting: how many broker
// acknowledgements a produce request demands before the broker responds.
type RequiredAcks int16

// Acks settings. AcksNone is at-most-once fire-and-forget; AcksLeader
// acknowledges after the leader persists; AcksAll waits for the full ISR.
const (
	AcksNone   RequiredAcks = 0
	AcksLeader RequiredAcks = 1
	AcksAll    RequiredAcks = -1
)

// String implements fmt.Stringer.
func (a RequiredAcks) String() string {
	switch a {
	case AcksNone:
		return "acks=0"
	case AcksLeader:
		return "acks=1"
	case AcksAll:
		return "acks=all"
	default:
		return fmt.Sprintf("acks=%d", int16(a))
	}
}

// ProduceRequest carries one record batch to a topic partition.
type ProduceRequest struct {
	CorrelationID uint32
	Topic         string
	Partition     int32
	Acks          RequiredAcks
	Batch         RecordBatch
}

// ProduceResponse acknowledges (or rejects) a produce request.
type ProduceResponse struct {
	CorrelationID uint32
	Topic         string
	Partition     int32
	BaseOffset    int64
	Err           ErrorCode
}

// IsolationLevel selects which records a fetch may observe, mirroring
// Kafka's isolation.level consumer setting.
type IsolationLevel uint8

// Isolation levels. ReadUncommitted (the zero value, so every pre-txn
// caller keeps its behaviour) returns all data records up to the high
// watermark, open and aborted transactions included. ReadCommitted
// bounds the fetch at the last stable offset and filters out records
// from aborted transactions. Control (marker) records are never
// returned at either level, as in Kafka.
const (
	ReadUncommitted IsolationLevel = 0
	ReadCommitted   IsolationLevel = 1
)

// String implements fmt.Stringer.
func (l IsolationLevel) String() string {
	switch l {
	case ReadUncommitted:
		return "read_uncommitted"
	case ReadCommitted:
		return "read_committed"
	default:
		return fmt.Sprintf("isolation_%d", uint8(l))
	}
}

// FetchRequest asks for up to MaxRecords records starting at Offset.
type FetchRequest struct {
	CorrelationID uint32
	Topic         string
	Partition     int32
	Offset        int64
	MaxRecords    int32
	Isolation     IsolationLevel
}

// FetchResponse returns the records and the partition high watermark.
// NextOffset is the fetch position after this response — past the last
// returned record and past any filtered (control or aborted) offsets the
// scan skipped, so a consumer advancing by record count alone would stall
// on a filtered gap. LastStable is the partition's last stable offset
// (first offset still held by an open transaction, or the high watermark
// when none is open); read_committed fetches never return records at or
// beyond it.
type FetchResponse struct {
	CorrelationID uint32
	Topic         string
	Partition     int32
	HighWatermark int64
	NextOffset    int64
	LastStable    int64
	Err           ErrorCode
	Records       []Record
}

// MetadataRequest asks which broker leads each partition of a topic.
type MetadataRequest struct {
	CorrelationID uint32
	Topic         string
}

// PartitionMetadata describes one partition's leadership.
type PartitionMetadata struct {
	Partition int32
	Leader    int32
	Replicas  []int32
}

// MetadataResponse lists partition leadership for a topic.
type MetadataResponse struct {
	CorrelationID uint32
	Topic         string
	Err           ErrorCode
	Partitions    []PartitionMetadata
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	return (*Decoder)(nil).decodeString(b)
}

// Decoder decodes messages with per-connection scratch reuse: topic
// strings matching Topic are interned (no string allocation per message)
// and record slices are decoded into a reused backing array, so a
// steady-state connection decodes whole batches with O(1) allocations.
//
// Ownership: the Records slice of a ProduceRequest or FetchResponse
// decoded through the same Decoder reuses one backing array — consume or
// copy (CloneRecords) the records before the next decode on this
// Decoder. Payloads follow the DecodeRecordBatch aliasing contract. A
// nil *Decoder is valid and decodes without any reuse.
type Decoder struct {
	Topic   string // expected topic; matching decodes return this string
	Group   string // expected consumer group; matching decodes return this string
	Member  string // expected group member id; matching decodes return this string
	records []Record
}

func (d *Decoder) decodeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("string length: %w", ErrShortBuffer)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("string body (%d bytes): %w", n, ErrShortBuffer)
	}
	// The comparison below does not allocate; only a topic the decoder
	// has not been primed with costs a fresh string.
	if d != nil && len(d.Topic) == n && string(b[:n]) == d.Topic {
		return d.Topic, b[n:], nil
	}
	return string(b[:n]), b[n:], nil
}

// decodeInterned decodes a length-prefixed string, returning intern
// instead of allocating when the bytes match it. Group-coordination
// messages intern the group id and member id this way, so a primed
// per-connection decoder parses the commit hot path without string
// allocations.
func (d *Decoder) decodeInterned(b []byte, intern string) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("string length: %w", ErrShortBuffer)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("string body (%d bytes): %w", n, ErrShortBuffer)
	}
	if len(intern) == n && string(b[:n]) == intern {
		return intern, b[n:], nil
	}
	return string(b[:n]), b[n:], nil
}

func (d *Decoder) groupIntern() string {
	if d == nil {
		return ""
	}
	return d.Group
}

func (d *Decoder) memberIntern() string {
	if d == nil {
		return ""
	}
	return d.Member
}

// Encode serialises the request body (without the frame header).
func (r ProduceRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Topic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Partition))
	dst = binary.BigEndian.AppendUint16(dst, uint16(r.Acks))
	return r.Batch.Encode(dst)
}

// EncodedSize returns the wire size of the request body.
func (r ProduceRequest) EncodedSize() int {
	return 4 + 2 + len(r.Topic) + 4 + 2 + r.Batch.EncodedSize()
}

// DecodeProduceRequest parses a request body produced by Encode.
func DecodeProduceRequest(b []byte) (ProduceRequest, error) {
	return (*Decoder)(nil).ProduceRequest(b)
}

// ProduceRequest is DecodeProduceRequest with scratch reuse; see Decoder
// for the ownership contract.
func (d *Decoder) ProduceRequest(b []byte) (ProduceRequest, error) {
	var r ProduceRequest
	if len(b) < 4 {
		return r, fmt.Errorf("produce correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	topic, b, err := d.decodeString(b)
	if err != nil {
		return r, fmt.Errorf("produce topic: %w", err)
	}
	r.Topic = topic
	if len(b) < 6 {
		return r, fmt.Errorf("produce partition/acks: %w", ErrShortBuffer)
	}
	r.Partition = int32(binary.BigEndian.Uint32(b))
	r.Acks = RequiredAcks(int16(binary.BigEndian.Uint16(b[4:])))
	b = b[6:]
	batch, rest, err := d.recordBatch(b)
	if err != nil {
		return r, fmt.Errorf("produce batch: %w", err)
	}
	if len(rest) != 0 {
		return r, fmt.Errorf("produce trailing %d bytes: %w", len(rest), ErrBadFrame)
	}
	r.Batch = batch
	return r, nil
}

// Encode serialises the response body.
func (r ProduceResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Topic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Partition))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.BaseOffset))
	return binary.BigEndian.AppendUint16(dst, uint16(r.Err))
}

// EncodedSize returns the wire size of the response body.
func (r ProduceResponse) EncodedSize() int { return 4 + 2 + len(r.Topic) + 4 + 8 + 2 }

// DecodeProduceResponse parses a response body produced by Encode.
func DecodeProduceResponse(b []byte) (ProduceResponse, error) {
	return (*Decoder)(nil).ProduceResponse(b)
}

// ProduceResponse is DecodeProduceResponse with topic interning.
func (d *Decoder) ProduceResponse(b []byte) (ProduceResponse, error) {
	var r ProduceResponse
	if len(b) < 4 {
		return r, fmt.Errorf("produce-response correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	topic, b, err := d.decodeString(b)
	if err != nil {
		return r, fmt.Errorf("produce-response topic: %w", err)
	}
	r.Topic = topic
	if len(b) != 14 {
		return r, fmt.Errorf("produce-response tail: %w", ErrBadFrame)
	}
	r.Partition = int32(binary.BigEndian.Uint32(b))
	r.BaseOffset = int64(binary.BigEndian.Uint64(b[4:]))
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[12:]))
	return r, nil
}

// Encode serialises the request body.
func (r FetchRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Topic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Partition))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Offset))
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.MaxRecords))
	return append(dst, byte(r.Isolation))
}

// DecodeFetchRequest parses a request body produced by Encode.
func DecodeFetchRequest(b []byte) (FetchRequest, error) {
	return (*Decoder)(nil).FetchRequest(b)
}

// FetchRequest is DecodeFetchRequest with topic interning.
func (d *Decoder) FetchRequest(b []byte) (FetchRequest, error) {
	var r FetchRequest
	if len(b) < 4 {
		return r, fmt.Errorf("fetch correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	topic, b, err := d.decodeString(b)
	if err != nil {
		return r, fmt.Errorf("fetch topic: %w", err)
	}
	r.Topic = topic
	if len(b) != 17 {
		return r, fmt.Errorf("fetch tail: %w", ErrBadFrame)
	}
	r.Partition = int32(binary.BigEndian.Uint32(b))
	r.Offset = int64(binary.BigEndian.Uint64(b[4:]))
	r.MaxRecords = int32(binary.BigEndian.Uint32(b[12:]))
	r.Isolation = IsolationLevel(b[16])
	return r, nil
}

// Encode serialises the response body.
func (r FetchResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Topic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Partition))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.HighWatermark))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.NextOffset))
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.LastStable))
	dst = binary.BigEndian.AppendUint16(dst, uint16(r.Err))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Records)))
	for _, rec := range r.Records {
		dst = rec.encode(dst)
	}
	return dst
}

// DecodeFetchResponse parses a response body produced by Encode.
func DecodeFetchResponse(b []byte) (FetchResponse, error) {
	return (*Decoder)(nil).FetchResponse(b)
}

// FetchResponse is DecodeFetchResponse with scratch reuse; see Decoder
// for the ownership contract.
func (d *Decoder) FetchResponse(b []byte) (FetchResponse, error) {
	var r FetchResponse
	if len(b) < 4 {
		return r, fmt.Errorf("fetch-response correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	b = b[4:]
	topic, b, err := d.decodeString(b)
	if err != nil {
		return r, fmt.Errorf("fetch-response topic: %w", err)
	}
	r.Topic = topic
	if len(b) < 34 {
		return r, fmt.Errorf("fetch-response header: %w", ErrShortBuffer)
	}
	r.Partition = int32(binary.BigEndian.Uint32(b))
	r.HighWatermark = int64(binary.BigEndian.Uint64(b[4:]))
	r.NextOffset = int64(binary.BigEndian.Uint64(b[12:]))
	r.LastStable = int64(binary.BigEndian.Uint64(b[20:]))
	r.Err = ErrorCode(binary.BigEndian.Uint16(b[28:]))
	count := int(binary.BigEndian.Uint32(b[30:]))
	b = b[34:]
	recs := d.recordScratch(count)
	for i := 0; i < count; i++ {
		rec, rest, err := decodeRecord(b)
		if err != nil {
			return r, fmt.Errorf("fetch-response record %d: %w", i, err)
		}
		recs = append(recs, rec)
		b = rest
	}
	if len(b) != 0 {
		return r, fmt.Errorf("fetch-response trailing %d bytes: %w", len(b), ErrBadFrame)
	}
	r.Records = recs
	d.keepRecordScratch(recs)
	return r, nil
}

// recordScratch returns an empty record slice to decode into: the reused
// backing array for a real decoder, a fresh allocation for a nil one.
func (d *Decoder) recordScratch(count int) []Record {
	if d != nil && d.records != nil {
		return d.records[:0]
	}
	return make([]Record, 0, count)
}

// keepRecordScratch retains a (possibly grown) record slice for reuse.
func (d *Decoder) keepRecordScratch(recs []Record) {
	if d != nil {
		d.records = recs
	}
}

// Encode serialises the request body.
func (r MetadataRequest) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	return appendString(dst, r.Topic)
}

// DecodeMetadataRequest parses a request body produced by Encode.
func DecodeMetadataRequest(b []byte) (MetadataRequest, error) {
	var r MetadataRequest
	if len(b) < 4 {
		return r, fmt.Errorf("metadata correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	topic, rest, err := decodeString(b[4:])
	if err != nil {
		return r, fmt.Errorf("metadata topic: %w", err)
	}
	if len(rest) != 0 {
		return r, fmt.Errorf("metadata trailing bytes: %w", ErrBadFrame)
	}
	r.Topic = topic
	return r, nil
}

// Encode serialises the response body.
func (r MetadataResponse) Encode(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.CorrelationID)
	dst = appendString(dst, r.Topic)
	dst = binary.BigEndian.AppendUint16(dst, uint16(r.Err))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Partitions)))
	for _, p := range r.Partitions {
		dst = binary.BigEndian.AppendUint32(dst, uint32(p.Partition))
		dst = binary.BigEndian.AppendUint32(dst, uint32(p.Leader))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Replicas)))
		for _, rep := range p.Replicas {
			dst = binary.BigEndian.AppendUint32(dst, uint32(rep))
		}
	}
	return dst
}

// DecodeMetadataResponse parses a response body produced by Encode.
func DecodeMetadataResponse(b []byte) (MetadataResponse, error) {
	var r MetadataResponse
	if len(b) < 4 {
		return r, fmt.Errorf("metadata-response correlation id: %w", ErrShortBuffer)
	}
	r.CorrelationID = binary.BigEndian.Uint32(b)
	topic, b, err := decodeString(b[4:])
	if err != nil {
		return r, fmt.Errorf("metadata-response topic: %w", err)
	}
	r.Topic = topic
	if len(b) < 6 {
		return r, fmt.Errorf("metadata-response header: %w", ErrShortBuffer)
	}
	r.Err = ErrorCode(binary.BigEndian.Uint16(b))
	count := int(binary.BigEndian.Uint32(b[2:]))
	b = b[6:]
	r.Partitions = make([]PartitionMetadata, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 12 {
			return r, fmt.Errorf("metadata-response partition %d: %w", i, ErrShortBuffer)
		}
		var p PartitionMetadata
		p.Partition = int32(binary.BigEndian.Uint32(b))
		p.Leader = int32(binary.BigEndian.Uint32(b[4:]))
		nrep := int(binary.BigEndian.Uint32(b[8:]))
		b = b[12:]
		if len(b) < 4*nrep {
			return r, fmt.Errorf("metadata-response replicas %d: %w", i, ErrShortBuffer)
		}
		p.Replicas = make([]int32, 0, nrep)
		for j := 0; j < nrep; j++ {
			p.Replicas = append(p.Replicas, int32(binary.BigEndian.Uint32(b)))
			b = b[4:]
		}
		r.Partitions = append(r.Partitions, p)
	}
	if len(b) != 0 {
		return r, fmt.Errorf("metadata-response trailing bytes: %w", ErrBadFrame)
	}
	return r, nil
}
