package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"kafkarel/internal/obs"
	"kafkarel/internal/producer"
	"kafkarel/internal/testbed"
)

// fakeClock drives a timeline without a simulator.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

// buildResult fabricates a result whose timeline has three phases
// (switches at 10s and 20s) and known per-interval counts.
func buildResult(t *testing.T) testbed.Result {
	t.Helper()
	clk := &fakeClock{}
	tl := obs.NewTimeline(5 * time.Second)
	tl.BindClock(clk)
	var pr obs.ProducerProbe
	var br obs.BrokerProbe
	tl.SetProbes(nil, nil,
		func() obs.ProducerProbe { return pr },
		func() obs.BrokerProbe { return br })

	tl.Sample() // t=0 anchor
	type step struct {
		at         time.Duration
		ann        string
		acked, dup uint64 // cumulative at this sample
	}
	steps := []step{
		{at: 5 * time.Second, acked: 10},
		{at: 10 * time.Second, ann: "cfg-B", acked: 20},
		{at: 15 * time.Second, acked: 25},
		{at: 20 * time.Second, ann: "cfg-A", acked: 30, dup: 4},
		{at: 25 * time.Second, acked: 50, dup: 4},
	}
	for _, s := range steps {
		clk.now = s.at
		if s.ann != "" {
			tl.Annotate(obs.AnnConfigSwitch, s.ann)
		}
		pr.Acked = s.acked
		br.DupAppends = s.dup
		tl.Sample()
	}
	return testbed.Result{
		Timeline: tl,
		Duration: 25 * time.Second,
		Producer: producer.Counts{Delivered: 50},
	}
}

func TestBuildRequiresTimeline(t *testing.T) {
	if _, err := Build(testbed.Result{}, nil, Options{}); err == nil {
		t.Error("result without timeline accepted")
	}
}

func TestBuildPhasesAndTotals(t *testing.T) {
	rep, err := Build(buildResult(t), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("phases = %d (%+v), want 3", len(rep.Phases), rep.Phases)
	}
	p := rep.Phases
	if p[0].Config != "initial" || p[1].Config != "cfg-B" || p[2].Config != "cfg-A" {
		t.Errorf("phase configs = %q/%q/%q", p[0].Config, p[1].Config, p[2].Config)
	}
	if p[0].End != 10*time.Second || p[1].Start != 10*time.Second || p[1].End != 20*time.Second {
		t.Errorf("phase bounds wrong: %+v", p[:2])
	}
	// A sample at exactly a switch time covers the interval before the
	// switch, so its counts belong to the earlier phase: phase 0 owns
	// t=0,5s,10s (acked 20), phase 1 owns 15s,20s (acked 10, dup 4),
	// phase 2 owns 25s (acked 20).
	if p[0].Acked != 20 || p[1].Acked != 10 || p[2].Acked != 20 {
		t.Errorf("phase acked = %d/%d/%d, want 20/10/20", p[0].Acked, p[1].Acked, p[2].Acked)
	}
	if p[1].DupAppends != 4 || p[2].DupAppends != 0 {
		t.Errorf("phase dups = %d/%d, want 4/0", p[1].DupAppends, p[2].DupAppends)
	}
	if rep.Totals.Acked != 50 || rep.Totals.DupAppends != 4 {
		t.Errorf("totals = %+v", rep.Totals)
	}
	if err := rep.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestVerifyCatchesMismatch(t *testing.T) {
	res := buildResult(t)
	res.Producer.Delivered = 49 // timeline says 50
	rep, err := Build(res, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err == nil {
		t.Error("Verify accepted a counter mismatch")
	}
}

func TestRender(t *testing.T) {
	rep, err := Build(buildResult(t), nil, Options{Title: "T", SparklineWidth: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# T", "## Phases", "cfg-B", "## Timeline", "## Events"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	// The marker line has carets for both switches.
	if strings.Count(out, "^") < 2 {
		t.Errorf("marker line lacks switch carets:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Errorf("empty series = %q", got)
	}
	s := sparkline([]float64{0, 0, 0, 8}, 4)
	if got := []rune(s); len(got) != 4 || got[3] != '█' || got[0] != '▁' {
		t.Errorf("sparkline = %q, want flat then full", s)
	}
	// Zero-max series renders all-low, not a divide-by-zero artefact.
	if s := sparkline([]float64{0, 0}, 2); s != "▁▁" {
		t.Errorf("zero series = %q", s)
	}
	// Resampling buckets by max.
	s = sparkline([]float64{0, 9, 0, 0}, 2)
	if []rune(s)[0] != '█' {
		t.Errorf("bucket max lost: %q", s)
	}
}
