// Package report renders a self-contained run report from a testbed
// Result: a per-phase reliability table (phases bounded by the
// configuration switches the timeline recorded), ASCII sparklines of
// the sampled series with switch markers, and the first complete
// duplicate chain from the event trace — the artefact a paper reader
// would want next to Table II: not just how much a dynamic run lost and
// duplicated, but when, and under which configuration.
package report

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"kafkarel/internal/obs"
	"kafkarel/internal/testbed"
	"kafkarel/internal/wire"
)

// Options tunes report rendering.
type Options struct {
	// Title heads the report ("Run report" when empty).
	Title string
	// SparklineWidth is the resampled width of each sparkline
	// (default 60 cells).
	SparklineWidth int
	// Gamma, when set (callers fill it via the kpi package), adds a
	// "KPI (Eq. 2)" section with the predicted and measured γ side by
	// side.
	Gamma *testbed.GammaComparison
}

// Phase is a stretch of the run under one configuration: from a
// configuration switch (or the start of the run) to the next switch (or
// the end). Counts are sums of the timeline rows that fall inside it.
type Phase struct {
	Start, End time.Duration
	// Config describes the configuration in force ("initial" for the
	// stretch before the first switch).
	Config string
	// Kind is the annotation kind that opened the phase
	// (obs.AnnConfigSwitch or obs.AnnOnlineDecision), "" for the
	// initial phase.
	Kind string

	Enqueued    uint64
	Acked       uint64
	Lost        uint64
	Retransmits uint64
	PktsOffered uint64
	PktsLost    uint64
	DupAppends  uint64
}

// LossRate is the phase's empirical network loss rate.
func (p Phase) LossRate() float64 {
	if p.PktsOffered == 0 {
		return 0
	}
	return float64(p.PktsLost) / float64(p.PktsOffered)
}

// Totals are the column sums over every timeline row. Because rows hold
// interval deltas of cumulative counters, these must equal the
// end-of-run counters — the cross-check Verify enforces.
type Totals struct {
	Enqueued    uint64
	Acked       uint64
	Lost        uint64
	Retransmits uint64
	PktsOffered uint64
	PktsLost    uint64
	Appends     uint64
	DupAppends  uint64
}

// Report is the built model, ready to render.
type Report struct {
	Title  string
	Result testbed.Result

	Rows        []obs.TimelineRow
	Annotations []obs.TimelineAnnotation
	Phases      []Phase
	Totals      Totals

	// DuplicateChain is the first complete duplicate chain (producer
	// send → timeout → retry → double append) found in the event trace;
	// empty when the trace has none or no trace was attached.
	DuplicateChain []obs.Event

	// Gamma echoes Options.Gamma.
	Gamma *testbed.GammaComparison

	width int
}

// Build assembles a report from a run result and (optionally) the
// tracer's events. The result must carry a timeline.
func Build(res testbed.Result, events []obs.Event, opts Options) (*Report, error) {
	if res.Timeline == nil {
		return nil, fmt.Errorf("report: result has no timeline (set Experiment.Timeline)")
	}
	r := &Report{
		Title:       opts.Title,
		Result:      res,
		Rows:        res.Timeline.Rows(),
		Annotations: res.Timeline.Annotations(),
		Gamma:       opts.Gamma,
		width:       opts.SparklineWidth,
	}
	if r.Title == "" {
		r.Title = "Run report"
	}
	if r.width <= 0 {
		r.width = 60
	}
	r.buildPhases()
	r.buildTotals()
	for _, chain := range obs.DuplicateChains(events) {
		if obs.IsCompleteDuplicateChain(chain) {
			r.DuplicateChain = chain
			break
		}
	}
	return r, nil
}

// buildPhases slices the run at every configuration-changing annotation
// and assigns each row to the phase covering it. A row's counts are the
// deltas over the interval *ending* at its timestamp, so a row at
// exactly a switch time belongs to the phase before the switch.
func (r *Report) buildPhases() {
	end := r.Result.Duration
	for _, row := range r.Rows {
		if row.At > end {
			end = row.At
		}
	}
	r.Phases = []Phase{{Start: 0, End: end, Config: "initial"}}
	for _, ann := range r.Annotations {
		if ann.Kind != obs.AnnConfigSwitch && ann.Kind != obs.AnnOnlineDecision {
			continue
		}
		last := &r.Phases[len(r.Phases)-1]
		if ann.At == last.Start {
			// A switch at the very moment the previous one fired (or at
			// t=0) replaces the phase rather than opening an empty one.
			last.Config = ann.Detail
			last.Kind = ann.Kind
			continue
		}
		last.End = ann.At
		r.Phases = append(r.Phases, Phase{
			Start: ann.At, End: end,
			Config: ann.Detail, Kind: ann.Kind,
		})
	}
	for _, row := range r.Rows {
		p := &r.Phases[0]
		for i := range r.Phases {
			// start < At <= end; the t=0 seed row stays in phase 0.
			if row.At > r.Phases[i].Start {
				p = &r.Phases[i]
			}
		}
		p.Enqueued += row.Enqueued
		p.Acked += row.Acked
		p.Lost += row.Lost
		p.Retransmits += row.Retransmits
		p.PktsOffered += row.PktsOffered
		p.PktsLost += row.PktsLost
		p.DupAppends += row.DupAppends
	}
}

func (r *Report) buildTotals() {
	for _, row := range r.Rows {
		r.Totals.Enqueued += row.Enqueued
		r.Totals.Acked += row.Acked
		r.Totals.Lost += row.Lost
		r.Totals.Retransmits += row.Retransmits
		r.Totals.PktsOffered += row.PktsOffered
		r.Totals.PktsLost += row.PktsLost
		r.Totals.Appends += row.Appends
		r.Totals.DupAppends += row.DupAppends
	}
}

// Verify cross-checks the timeline column sums against the end-of-run
// counters: producer outcomes against the reconciliation-facing counts
// and, when metrics were enabled, packets and duplicate appends against
// the registry snapshot. An error means the timeline missed or
// double-counted an interval.
func (r *Report) Verify() error {
	c := r.Result.Producer
	if got, want := r.Totals.Acked, c.Delivered; got != want {
		return fmt.Errorf("report: timeline acked %d != producer delivered %d", got, want)
	}
	if got, want := r.Totals.Lost, c.Lost; got != want {
		return fmt.Errorf("report: timeline lost %d != producer lost %d", got, want)
	}
	m := r.Result.Metrics
	if m == (testbed.MetricsSnapshot{}) {
		return nil // metrics disabled: nothing more to check against
	}
	if got, want := r.Totals.PktsLost, m.PacketsLostRandom+m.PacketsLostOverflow; got != want {
		return fmt.Errorf("report: timeline packets lost %d != metrics %d", got, want)
	}
	if got, want := r.Totals.Retransmits, m.Retransmits; got != want {
		return fmt.Errorf("report: timeline retransmits %d != metrics %d", got, want)
	}
	if got, want := r.Totals.DupAppends, m.BrokerDupAppends; got != want {
		return fmt.Errorf("report: timeline duplicate appends %d != metrics %d", got, want)
	}
	return nil
}

// sparkRunes are the eight block levels of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline resamples values into width cells by bucket max and maps
// each cell to a block rune scaled by the series maximum.
func sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	if width > len(values) {
		width = len(values)
	}
	cells := make([]float64, width)
	max := 0.0
	for i, v := range values {
		c := i * width / len(values)
		if v > cells[c] {
			cells[c] = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range cells {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// markerLine renders a caret under each sparkline cell whose time span
// contains a configuration switch.
func (r *Report) markerLine(width int) string {
	if len(r.Rows) == 0 {
		return ""
	}
	if width > len(r.Rows) {
		width = len(r.Rows)
	}
	end := r.Rows[len(r.Rows)-1].At
	if end <= 0 {
		return strings.Repeat(" ", width)
	}
	line := []rune(strings.Repeat(" ", width))
	for _, ann := range r.Annotations {
		if ann.Kind != obs.AnnConfigSwitch && ann.Kind != obs.AnnOnlineDecision {
			continue
		}
		c := int(int64(ann.At) * int64(width) / int64(end))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		line[c] = '^'
	}
	return string(line)
}

// series extracts one column from the rows.
func (r *Report) series(f func(obs.TimelineRow) float64) []float64 {
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = f(row)
	}
	return out
}

func fmtDur(d time.Duration) string { return d.Truncate(time.Millisecond).String() }

// Render writes the report as markdown-flavoured text: every section is
// plain ASCII/Unicode that reads the same in a terminal and a markdown
// viewer.
func (r *Report) Render(w io.Writer) error {
	res := r.Result
	fmt.Fprintf(w, "# %s\n\n", r.Title)
	fmt.Fprintf(w, "- simulated duration: %v (completed: %v)\n", fmtDur(res.Duration), res.Completed)
	fmt.Fprintf(w, "- messages acquired: %d\n", res.Acquired)
	fmt.Fprintf(w, "- P_l (loss) = %.6f   P_d (duplication) = %.6f\n", res.Pl, res.Pd)
	fmt.Fprintf(w, "- throughput: %.1f msg/s   stale rate: %.4f\n", res.Throughput, res.StaleRate)
	fmt.Fprintf(w, "- timeline: %d samples, %d annotations\n\n", len(r.Rows), len(r.Annotations))

	if res.Metrics.SpanSend.Total() > 0 {
		fmt.Fprintf(w, "## Record latency spans\n\n")
		fmt.Fprintf(w, "Each span is timed from producer enqueue (commit: send → durable ack).\n\n")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "span\tcount\tp50\tp95\tp99\tmax")
		span := func(name string, s testbed.SpanHist) {
			if s.Total() == 0 {
				return
			}
			fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%v\n",
				name, s.Total(), s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), s.Max)
		}
		span("enqueue→send", res.Metrics.SpanSend)
		span("enqueue→append", res.Metrics.SpanAppend)
		span("enqueue→replicated", res.Metrics.SpanReplicated)
		span("enqueue→ack", res.Metrics.SpanAck)
		span("enqueue→delivery", res.Metrics.SpanDelivery)
		span("commit", res.Metrics.SpanCommit)
		span("rebalance", res.Metrics.Rebalance)
		tw.Flush()
		if res.GroupLag != nil {
			fmt.Fprintf(w, "\nconsumer lag (end of run): %v   commit acks: %d   redelivered: %d\n",
				res.GroupLag, res.Metrics.ConsumerCommitAcks, res.Metrics.ConsumerRedelivered)
		}
		fmt.Fprintln(w)
	}

	if r.Gamma != nil {
		c := *r.Gamma
		fmt.Fprintf(w, "## KPI (Eq. 2)\n\n")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\tγ\tφ\tμ\tP_l\tP_d")
		fmt.Fprintf(tw, "predicted\t%.4f\t%.4f\t%.4f\t%.6f\t%.6f\n",
			c.Predicted.Gamma, c.Predicted.Phi, c.Predicted.Mu, c.Predicted.Pl, c.Predicted.Pd)
		fmt.Fprintf(tw, "measured\t%.4f\t%.4f\t%.4f\t%.6f\t%.6f\n",
			c.Measured.Gamma, c.Measured.Phi, c.Measured.Mu, c.Measured.Pl, c.Measured.Pd)
		tw.Flush()
		fmt.Fprintf(w, "\ndelta (measured − predicted): %+.4f\n\n", c.Delta())
	}

	fmt.Fprintf(w, "## Phases\n\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tfrom\tto\tconfig\tenq\tacked\tlost\tdup-appends\tretrans\tnet-loss")
	for i, p := range r.Phases {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%s\t%d\t%d\t%d\t%d\t%d\t%.4f\n",
			i, fmtDur(p.Start), fmtDur(p.End), p.Config,
			p.Enqueued, p.Acked, p.Lost, p.DupAppends, p.Retransmits, p.LossRate())
	}
	tw.Flush()
	fmt.Fprintf(w, "\ntotals: enqueued %d, acked %d, lost %d, dup-appends %d, retransmits %d, pkts %d/%d lost\n\n",
		r.Totals.Enqueued, r.Totals.Acked, r.Totals.Lost, r.Totals.DupAppends,
		r.Totals.Retransmits, r.Totals.PktsLost, r.Totals.PktsOffered)

	var errParts []string
	for c, n := range res.Metrics.ProduceErrors {
		if n > 0 {
			errParts = append(errParts, fmt.Sprintf("%s=%d", wire.ErrorCode(c), n))
		}
	}
	if len(errParts) > 0 {
		fmt.Fprintf(w, "produce errors: %s\n\n", strings.Join(errParts, " "))
	}

	if len(r.Rows) > 1 {
		fmt.Fprintf(w, "## Timeline (%v per sample, ^ = config switch)\n\n", res.Timeline.Interval())
		spark := func(name string, f func(obs.TimelineRow) float64) {
			fmt.Fprintf(w, "%-14s %s\n", name, sparkline(r.series(f), r.width))
		}
		spark("net loss", func(row obs.TimelineRow) float64 { return row.LossRate })
		spark("retransmits", func(row obs.TimelineRow) float64 { return float64(row.Retransmits) })
		spark("queue depth", func(row obs.TimelineRow) float64 { return float64(row.QueueDepth) })
		spark("acked", func(row obs.TimelineRow) float64 { return float64(row.Acked) })
		spark("lost", func(row obs.TimelineRow) float64 { return float64(row.Lost) })
		spark("dup appends", func(row obs.TimelineRow) float64 { return float64(row.DupAppends) })
		fmt.Fprintf(w, "%-14s %s\n\n", "", r.markerLine(r.width))
	}

	if n := len(r.Annotations); n > 0 {
		fmt.Fprintf(w, "## Events\n\n")
		for _, ann := range r.Annotations {
			fmt.Fprintf(w, "- %v %s: %s\n", fmtDur(ann.At), ann.Kind, ann.Detail)
		}
		fmt.Fprintln(w)
	}

	if len(r.DuplicateChain) > 0 {
		fmt.Fprintf(w, "## First complete duplicate chain\n\n")
		fmt.Fprintf(w, "The batch below was sent, timed out, was retried, and both\ncopies were appended — the paper's Case-5 mechanism end to end.\n\n")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "at\tlayer\ttype\tkey\tvalue\taux\tdetail")
		for _, ev := range r.DuplicateChain {
			fmt.Fprintf(tw, "%v\t%s\t%s\t%d\t%d\t%d\t%s\n",
				fmtDur(ev.At), ev.Layer, ev.Type, ev.Key, ev.Value, ev.Aux, ev.Detail)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	return nil
}
