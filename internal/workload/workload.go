// Package workload generates the source data streams the paper feeds its
// producer: payloads of configurable size (Sec. III-E: "the payload of
// the message is a string of definable length") and the three
// application stream profiles of the dynamic-configuration evaluation
// (Table II).
package workload

import (
	"fmt"
	"math/rand/v2"
	"time"

	"kafkarel/internal/stats"
)

// FixedSource yields count payloads of exactly size bytes. Payloads share
// one zeroed backing array because message content is irrelevant to the
// experiments; only the size matters on the wire.
type FixedSource struct {
	payload []byte
	left    int
}

// NewFixedSource builds a source of count messages of size bytes each.
func NewFixedSource(size, count int) (*FixedSource, error) {
	if size < 0 {
		return nil, fmt.Errorf("workload: negative size %d", size)
	}
	if count < 0 {
		return nil, fmt.Errorf("workload: negative count %d", count)
	}
	return &FixedSource{payload: make([]byte, size), left: count}, nil
}

// Next implements producer.Source.
func (s *FixedSource) Next() ([]byte, bool) {
	if s.left == 0 {
		return nil, false
	}
	s.left--
	return s.payload, true
}

// Remaining returns how many messages the source will still yield.
func (s *FixedSource) Remaining() int { return s.left }

// SampledSource yields count payloads whose sizes come from a sampler
// (clamped to [1, maxSize]); it models streams with varying message
// sizes.
type SampledSource struct {
	size    stats.Sampler
	maxSize int
	left    int
	buf     []byte
}

// NewSampledSource builds a source of count messages with sampled sizes.
func NewSampledSource(size stats.Sampler, maxSize, count int) (*SampledSource, error) {
	if size == nil {
		return nil, fmt.Errorf("workload: nil size sampler")
	}
	if maxSize <= 0 {
		return nil, fmt.Errorf("workload: max size %d <= 0", maxSize)
	}
	if count < 0 {
		return nil, fmt.Errorf("workload: negative count %d", count)
	}
	return &SampledSource{size: size, maxSize: maxSize, left: count, buf: make([]byte, maxSize)}, nil
}

// Next implements producer.Source.
func (s *SampledSource) Next() ([]byte, bool) {
	if s.left == 0 {
		return nil, false
	}
	s.left--
	n := int(s.size.Sample())
	if n < 1 {
		n = 1
	}
	if n > s.maxSize {
		n = s.maxSize
	}
	return s.buf[:n], true
}

// Profile describes one of the application streams in Table II: its
// message-size regime, its timeliness requirement S, and the suggested
// KPI weights (ω1..ω4).
type Profile struct {
	Name string
	// MeanSize is the typical message size M in bytes.
	MeanSize int
	// SizeJitter is the ± spread of sizes around MeanSize.
	SizeJitter int
	// Timeliness is the validity window S of a message.
	Timeliness time.Duration
	// Weights are the suggested ω1..ω4 (throughput, service rate,
	// 1-P_l, 1-P_d), summing to 1.
	Weights [4]float64
}

// The three Table II stream profiles.
var (
	// SocialMedia: text messages that "must be delivered quickly with the
	// lowest loss rate".
	SocialMedia = Profile{
		Name:       "social-media",
		MeanSize:   250,
		SizeJitter: 120,
		Timeliness: 5 * time.Second,
		Weights:    [4]float64{0.4, 0.3, 0.2, 0.1},
	}
	// WebLogs: access records (~200 B) with lax timeliness but strict
	// completeness; duplicates are acceptable (idempotent processing).
	WebLogs = Profile{
		Name:       "web-logs",
		MeanSize:   200,
		SizeJitter: 50,
		Timeliness: 60 * time.Second,
		Weights:    [4]float64{0.1, 0.1, 0.7, 0.1},
	}
	// GameTraffic: small (<100 B) real-time messages that must arrive
	// accurately and immediately.
	GameTraffic = Profile{
		Name:       "game-traffic",
		MeanSize:   80,
		SizeJitter: 20,
		Timeliness: 500 * time.Millisecond,
		Weights:    [4]float64{0.2, 0.4, 0.2, 0.2},
	}
)

// Profiles lists the Table II streams in paper order.
func Profiles() []Profile { return []Profile{SocialMedia, WebLogs, GameTraffic} }

// Source builds a message source for the profile.
func (p Profile) Source(count int, seed uint64) (*SampledSource, error) {
	rng := rand.New(rand.NewPCG(seed, 0xABCD))
	lo := p.MeanSize - p.SizeJitter
	if lo < 1 {
		lo = 1
	}
	hi := p.MeanSize + p.SizeJitter
	u, err := stats.NewUniform(float64(lo), float64(hi), rng)
	if err != nil {
		return nil, fmt.Errorf("workload: profile %s: %w", p.Name, err)
	}
	return NewSampledSource(u, hi, count)
}
