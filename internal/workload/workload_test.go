package workload

import (
	"testing"

	"kafkarel/internal/stats"
)

func TestFixedSource(t *testing.T) {
	s, err := NewFixedSource(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, ok := s.Next()
		if !ok || len(p) != 100 {
			t.Fatalf("draw %d: ok=%v len=%d", i, ok, len(p))
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("source yielded beyond count")
	}
	if s.Remaining() != 0 {
		t.Errorf("Remaining = %d", s.Remaining())
	}
}

func TestFixedSourceValidation(t *testing.T) {
	if _, err := NewFixedSource(-1, 1); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := NewFixedSource(1, -1); err == nil {
		t.Error("negative count accepted")
	}
}

func TestFixedSourceZeroSize(t *testing.T) {
	s, err := NewFixedSource(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := s.Next()
	if !ok || len(p) != 0 {
		t.Errorf("zero-size draw: ok=%v len=%d", ok, len(p))
	}
}

func TestSampledSourceClamps(t *testing.T) {
	s, err := NewSampledSource(stats.Constant{Value: -5}, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := s.Next()
	if !ok || len(p) != 1 {
		t.Errorf("negative sample clamped to %d, want 1", len(p))
	}
	big, err := NewSampledSource(stats.Constant{Value: 1e9}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, _ = big.Next()
	if len(p) != 100 {
		t.Errorf("oversized sample clamped to %d, want 100", len(p))
	}
}

func TestSampledSourceExhausts(t *testing.T) {
	s, err := NewSampledSource(stats.Constant{Value: 10}, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Next()
	s.Next()
	if _, ok := s.Next(); ok {
		t.Error("yielded beyond count")
	}
}

func TestSampledSourceValidation(t *testing.T) {
	if _, err := NewSampledSource(nil, 10, 1); err == nil {
		t.Error("nil sampler accepted")
	}
	if _, err := NewSampledSource(stats.Constant{Value: 1}, 0, 1); err == nil {
		t.Error("zero max size accepted")
	}
	if _, err := NewSampledSource(stats.Constant{Value: 1}, 10, -1); err == nil {
		t.Error("negative count accepted")
	}
}

func TestProfilesWellFormed(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d, want 3", len(ps))
	}
	for _, p := range ps {
		sum := 0.0
		for _, w := range p.Weights {
			if w < 0 {
				t.Errorf("%s: negative weight", p.Name)
			}
			sum += w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: weights sum to %v", p.Name, sum)
		}
		if p.MeanSize <= 0 || p.Timeliness <= 0 {
			t.Errorf("%s: degenerate profile %+v", p.Name, p)
		}
	}
	// Table II orderings: game traffic is the smallest and most urgent;
	// web logs weigh completeness (ω3) highest.
	if GameTraffic.MeanSize >= WebLogs.MeanSize {
		t.Error("game traffic not smaller than web logs")
	}
	if GameTraffic.Timeliness >= WebLogs.Timeliness {
		t.Error("game traffic not more urgent than web logs")
	}
	if WebLogs.Weights[2] <= SocialMedia.Weights[2] {
		t.Error("web logs do not prioritise completeness")
	}
}

func TestProfileSource(t *testing.T) {
	src, err := SocialMedia.Source(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo := SocialMedia.MeanSize - SocialMedia.SizeJitter
	hi := SocialMedia.MeanSize + SocialMedia.SizeJitter
	sum := 0
	for i := 0; i < 100; i++ {
		p, ok := src.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		if len(p) < lo || len(p) > hi {
			t.Fatalf("size %d outside [%d,%d]", len(p), lo, hi)
		}
		sum += len(p)
	}
	mean := sum / 100
	if mean < SocialMedia.MeanSize-50 || mean > SocialMedia.MeanSize+50 {
		t.Errorf("mean size %d far from %d", mean, SocialMedia.MeanSize)
	}
}

func TestProfileSourceDeterminism(t *testing.T) {
	a, err := GameTraffic.Source(50, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GameTraffic.Source(50, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pa, _ := a.Next()
		pb, _ := b.Next()
		if len(pa) != len(pb) {
			t.Fatalf("draw %d: %d vs %d", i, len(pa), len(pb))
		}
	}
}
