// Package cluster assembles broker nodes into a Kafka-model cluster:
// topic/partition metadata, leader placement, follower replication,
// leader re-election on broker failure, and a wire-protocol server that
// exposes the cluster over a transport connection. The paper's testbed
// runs three brokers (Sec. III-E); that is this package's default.
package cluster

import (
	"fmt"
	"strings"
	"time"

	"kafkarel/internal/broker"
	"kafkarel/internal/des"
	"kafkarel/internal/obs"
	"kafkarel/internal/wire"
)

// Config tunes the cluster.
type Config struct {
	// Brokers is the number of nodes (paper default: 3).
	Brokers int
	// Broker configures each node's service times.
	Broker broker.Config
	// InterBrokerDelay is the one-way replication network delay between
	// nodes, which share a datacenter network unaffected by the injected
	// producer-side faults.
	InterBrokerDelay time.Duration
	// MinISR is the minimum number of live replicas (leader included)
	// required to accept an acks=all produce.
	MinISR int
	// Obs attaches the per-run observability bundle to the cluster's
	// replication path. Broker-level instrumentation is configured via
	// Broker.Obs; the testbed sets both from the same bundle.
	Obs *obs.Obs
}

// DefaultConfig matches the paper's three-broker Docker testbed.
func DefaultConfig() Config {
	return Config{
		Brokers:          3,
		Broker:           broker.DefaultConfig(),
		InterBrokerDelay: 250 * time.Microsecond,
		MinISR:           1,
	}
}

type partitionMeta struct {
	leader   int32
	replicas []int32
}

type topicMeta struct {
	partitions []*partitionMeta
}

// Cluster is a set of brokers plus topic metadata. Not safe for
// concurrent use; the DES is single-threaded.
type Cluster struct {
	sim     *des.Simulator
	cfg     Config
	brokers []*broker.Broker
	topics  map[string]*topicMeta

	cReplications   *obs.Counter
	gReplication    *obs.Gauge
	hSpanAppend     *obs.Histogram
	hSpanReplicated *obs.Histogram
	trace           *obs.Tracer
	topoHooks       []func() // run after every broker fail/crash/recover

	freeProd []*prodJob // recycled produce-routing jobs
	freeRepl []*replJob // recycled replication-delay jobs
	freeSend []*sendJob // recycled acks=all follower-send jobs
}

// prodJob carries one produce request through the cluster's asynchronous
// routing pipeline (leader append, replication fan-out, ack counting)
// without per-request closures. The request — batch records included —
// is retained until the pipeline completes, so records must not alias
// caller-reused buffers (the wire server deep-copies them at decode).
type prodJob struct {
	c          *Cluster
	pm         *partitionMeta
	leader     *broker.Broker
	req        wire.ProduceRequest
	idempotent bool
	done       func(wire.ProduceResponse)
	resp       wire.ProduceResponse // leader response, held while followers ack (acks=all)
	pending    int                  // outstanding follower acks (acks=all)
	followers  []*broker.Broker     // live-replica scratch, leader first
}

func (c *Cluster) getProd() *prodJob {
	if n := len(c.freeProd); n > 0 {
		j := c.freeProd[n-1]
		c.freeProd = c.freeProd[:n-1]
		return j
	}
	return &prodJob{c: c}
}

func (c *Cluster) putProd(j *prodJob) {
	j.pm, j.leader, j.done = nil, nil, nil
	j.req = wire.ProduceRequest{}
	j.resp = wire.ProduceResponse{}
	j.pending = 0
	for i := range j.followers {
		j.followers[i] = nil
	}
	j.followers = j.followers[:0]
	c.freeProd = append(c.freeProd, j)
}

// replJob parks one follower copy across the inter-broker delay.
type replJob struct {
	c          *Cluster
	src        *broker.Broker
	f          *broker.Broker
	req        wire.ProduceRequest
	idempotent bool
}

func (c *Cluster) getRepl() *replJob {
	if n := len(c.freeRepl); n > 0 {
		r := c.freeRepl[n-1]
		c.freeRepl = c.freeRepl[:n-1]
		return r
	}
	return &replJob{c: c}
}

func (c *Cluster) putRepl(r *replJob) {
	r.src, r.f = nil, nil
	r.req = wire.ProduceRequest{}
	c.freeRepl = append(c.freeRepl, r)
}

// sendJob parks one acks=all follower send across the inter-broker
// delay, pairing the shared prodJob with the target follower.
type sendJob struct {
	j *prodJob
	f *broker.Broker
}

func (c *Cluster) getSend() *sendJob {
	if n := len(c.freeSend); n > 0 {
		s := c.freeSend[n-1]
		c.freeSend = c.freeSend[:n-1]
		return s
	}
	return &sendJob{}
}

func (c *Cluster) putSend(s *sendJob) {
	s.j, s.f = nil, nil
	c.freeSend = append(c.freeSend, s)
}

// New builds a cluster of cfg.Brokers running nodes.
func New(sim *des.Simulator, cfg Config) (*Cluster, error) {
	if sim == nil {
		return nil, fmt.Errorf("cluster: nil simulator")
	}
	if cfg.Brokers <= 0 {
		cfg.Brokers = DefaultConfig().Brokers
	}
	if cfg.MinISR <= 0 {
		cfg.MinISR = 1
	}
	if cfg.InterBrokerDelay < 0 {
		return nil, fmt.Errorf("cluster: negative inter-broker delay")
	}
	c := &Cluster{
		sim:             sim,
		cfg:             cfg,
		topics:          make(map[string]*topicMeta),
		cReplications:   cfg.Obs.Counter(obs.MReplications),
		gReplication:    cfg.Obs.Gauge(obs.MReplicationFactor),
		hSpanAppend:     cfg.Obs.Histogram(obs.MSpanAppend, obs.LatencyBounds),
		hSpanReplicated: cfg.Obs.Histogram(obs.MSpanReplicated, obs.LatencyBounds),
		trace:           cfg.Obs.Tracer(),
	}
	for i := 0; i < cfg.Brokers; i++ {
		b, err := broker.New(int32(i), sim, cfg.Broker)
		if err != nil {
			return nil, fmt.Errorf("cluster: broker %d: %w", i, err)
		}
		c.brokers = append(c.brokers, b)
	}
	return c, nil
}

// AddTopologyHook registers fn to run after every topology change —
// broker failure, unclean crash, or recovery, once leadership has been
// re-elected and logs caught up. The group coordinator uses it to
// re-materialize its offsets view from the (possibly truncated) offsets
// log; the transaction coordinator uses it to re-materialize and
// re-drive incomplete transactions. Hooks run in registration order.
func (c *Cluster) AddTopologyHook(fn func()) {
	if fn != nil {
		c.topoHooks = append(c.topoHooks, fn)
	}
}

func (c *Cluster) topologyChanged() {
	for _, fn := range c.topoHooks {
		fn()
	}
}

// Broker returns the node with the given ID, or nil.
func (c *Cluster) Broker(id int32) *broker.Broker {
	if id < 0 || int(id) >= len(c.brokers) {
		return nil
	}
	return c.brokers[id]
}

// Brokers returns the number of nodes.
func (c *Cluster) Brokers() int { return len(c.brokers) }

// CreateTopic provisions a topic with the given partition count and
// replication factor. Leaders and replicas are placed round-robin, as
// Kafka's default assignor does.
func (c *Cluster) CreateTopic(name string, partitions, replicationFactor int) error {
	if _, ok := c.topics[name]; ok {
		return fmt.Errorf("cluster: topic %q already exists", name)
	}
	if partitions <= 0 {
		return fmt.Errorf("cluster: topic %q needs at least one partition", name)
	}
	if replicationFactor <= 0 || replicationFactor > len(c.brokers) {
		return fmt.Errorf("cluster: replication factor %d outside [1, %d]", replicationFactor, len(c.brokers))
	}
	tm := &topicMeta{}
	for p := 0; p < partitions; p++ {
		pm := &partitionMeta{leader: int32(p % len(c.brokers))}
		for r := 0; r < replicationFactor; r++ {
			id := int32((p + r) % len(c.brokers))
			pm.replicas = append(pm.replicas, id)
			c.brokers[id].CreatePartition(name, int32(p))
		}
		tm.partitions = append(tm.partitions, pm)
	}
	c.topics[name] = tm
	// Internal topics (the offsets log) keep their own replication; the
	// gauge records the data topics' factor for per-copy normalization.
	if !strings.HasPrefix(name, "__") {
		c.gReplication.SetMax(int64(replicationFactor))
	}
	return nil
}

// Probe returns the cluster-wide broker state for a timeline sampler:
// the topic's leader log end offsets summed over its partitions (the
// consumer-visible log length) plus cumulative append and
// duplicate-append counts over every broker — followers included, so
// the counts reconcile against the run's broker metrics, which
// replication also feeds.
func (c *Cluster) Probe(topic string) obs.BrokerProbe {
	var pr obs.BrokerProbe
	if tm, ok := c.topics[topic]; ok {
		for p := range tm.partitions {
			leader := c.Leader(topic, int32(p))
			if leader == nil {
				continue
			}
			if log := leader.Log(topic, int32(p)); log != nil {
				pr.LogEnd += log.End()
			}
		}
	}
	for _, b := range c.brokers {
		st := b.Stats()
		pr.Appends += st.RecordsAppended
		pr.DupAppends += st.DuplicateAppends
	}
	return pr
}

// Leader returns the broker currently leading the partition, or nil when
// the topic/partition is unknown or leaderless.
func (c *Cluster) Leader(topic string, partition int32) *broker.Broker {
	pm := c.partition(topic, partition)
	if pm == nil || pm.leader < 0 {
		return nil
	}
	return c.brokers[pm.leader]
}

func (c *Cluster) partition(topic string, partition int32) *partitionMeta {
	tm, ok := c.topics[topic]
	if !ok || partition < 0 || int(partition) >= len(tm.partitions) {
		return nil
	}
	return tm.partitions[partition]
}

// liveReplicasInto appends the running replicas of a partition to dst,
// leader first, and returns the result.
func (c *Cluster) liveReplicasInto(pm *partitionMeta, dst []*broker.Broker) []*broker.Broker {
	if pm.leader >= 0 && c.brokers[pm.leader].Up() {
		dst = append(dst, c.brokers[pm.leader])
	}
	for _, id := range pm.replicas {
		if id == pm.leader {
			continue
		}
		if c.brokers[id].Up() {
			dst = append(dst, c.brokers[id])
		}
	}
	return dst
}

// FailBroker stops a node cleanly and re-elects leaders for every
// partition it led, choosing the first live replica (Kafka's
// preferred-replica order). Partitions with no live replica become
// leaderless until a recovery.
func (c *Cluster) FailBroker(id int32) error {
	b := c.Broker(id)
	if b == nil {
		return fmt.Errorf("cluster: no broker %d", id)
	}
	b.Stop()
	c.demote(id)
	c.topologyChanged()
	return nil
}

// CrashBrokerUnclean kills a node without the shutdown fsync — the
// unflushed tail of each of its partition logs is destroyed (see
// broker.CrashUnclean) — and re-elects leaders as FailBroker does. With
// acks=1 this is the real Kafka data-loss scenario: records the leader
// acknowledged but never flushed nor replicated are gone for good.
func (c *Cluster) CrashBrokerUnclean(id int32) error {
	b := c.Broker(id)
	if b == nil {
		return fmt.Errorf("cluster: no broker %d", id)
	}
	b.CrashUnclean()
	c.demote(id)
	c.topologyChanged()
	return nil
}

// demote moves leadership off a dead node, partition by partition.
func (c *Cluster) demote(id int32) {
	for _, tm := range c.topics {
		for _, pm := range tm.partitions {
			if pm.leader != id {
				continue
			}
			pm.leader = -1
			for _, rid := range pm.replicas {
				if c.brokers[rid].Up() {
					pm.leader = rid
					break
				}
			}
		}
	}
}

// RecoverBroker restarts a node, catches its logs up from current
// leaders, and restores it as a leader candidate for leaderless
// partitions.
func (c *Cluster) RecoverBroker(id int32) error {
	b := c.Broker(id)
	if b == nil {
		return fmt.Errorf("cluster: no broker %d", id)
	}
	b.Start()
	for topic, tm := range c.topics {
		for p, pm := range tm.partitions {
			holdsReplica := false
			for _, rid := range pm.replicas {
				if rid == id {
					holdsReplica = true
					break
				}
			}
			if !holdsReplica {
				continue
			}
			if pm.leader == -1 {
				pm.leader = id
				continue
			}
			// Catch up from the leader: truncate local divergence and
			// copy the leader's suffix.
			leader := c.brokers[pm.leader]
			src := leader.Log(topic, int32(p))
			dst := b.Log(topic, int32(p))
			if src == nil || dst == nil || leader.ID() == id {
				continue
			}
			if dst.End() > src.End() {
				dst.TruncateTo(src.End())
			}
			if dst.End() < src.End() {
				entries, err := src.Read(dst.End(), int(src.End()-dst.End()))
				if err != nil {
					return fmt.Errorf("cluster: catch-up read: %w", err)
				}
				for _, e := range entries {
					dst.Append([]wire.Record{e.Record})
				}
			}
			// The log now mirrors the leader's, so the idempotent dedupe
			// state must too — otherwise a retry routed here after a later
			// leadership change could re-append a batch the cluster already
			// acknowledged. Kafka gets this for free by rebuilding producer
			// state from the replicated log.
			b.RestoreProducerState(topic, int32(p),
				leader.ProducerStateSnapshot(topic, int32(p)))
			// The raw-record copy above carries no batch headers, so the
			// replica cannot rebuild transaction state from it; adopt the
			// leader's view wholesale, like the producer state.
			b.RestoreTxnState(topic, int32(p),
				leader.TxnStateSnapshot(topic, int32(p)))
		}
	}
	c.topologyChanged()
	return nil
}

// StatsAll returns every broker's activity snapshot, indexed by node ID.
func (c *Cluster) StatsAll() []broker.Stats {
	out := make([]broker.Stats, len(c.brokers))
	for i, b := range c.brokers {
		out[i] = b.Stats()
	}
	return out
}

// Metadata answers a metadata request for one topic.
func (c *Cluster) Metadata(req wire.MetadataRequest) wire.MetadataResponse {
	resp := wire.MetadataResponse{CorrelationID: req.CorrelationID, Topic: req.Topic}
	tm, ok := c.topics[req.Topic]
	if !ok {
		resp.Err = wire.ErrUnknownTopicOrPartition
		return resp
	}
	for p, pm := range tm.partitions {
		resp.Partitions = append(resp.Partitions, wire.PartitionMetadata{
			Partition: int32(p),
			Leader:    pm.leader,
			Replicas:  append([]int32(nil), pm.replicas...),
		})
	}
	return resp
}

// HandleProduce routes a produce request to the partition leader,
// replicates the batch to followers, and calls done according to the
// request's acks mode:
//
//   - acks=0: the leader appends; done is never called.
//   - acks=1: done fires once the leader has appended.
//   - acks=all: done fires once every live replica has appended; if
//     fewer than MinISR replicas are live, the request fails with
//     ErrNotEnoughReplicas.
//
// A dead or missing leader produces no response for acks=0 (the bytes
// vanish, as with a crashed node) and an error response otherwise only
// when metadata is stale in a way the producer can observe — matching
// Kafka, where a connection to a dead broker simply times out. Here the
// request is silently dropped and the producer's request timer handles
// it.
func (c *Cluster) HandleProduce(req wire.ProduceRequest, done func(wire.ProduceResponse)) {
	pm := c.partition(req.Topic, req.Partition)
	if pm == nil {
		if req.Acks != wire.AcksNone && done != nil {
			done(wire.ProduceResponse{
				CorrelationID: req.CorrelationID,
				Topic:         req.Topic,
				Partition:     req.Partition,
				Err:           wire.ErrUnknownTopicOrPartition,
			})
		}
		return
	}
	if pm.leader < 0 || !c.brokers[pm.leader].Up() {
		return // leaderless or dead leader: request vanishes
	}
	leader := c.brokers[pm.leader]
	idempotent := req.Batch.Idempotent

	if req.Acks == wire.AcksAll {
		j := c.getProd()
		j.followers = c.liveReplicasInto(pm, j.followers)
		if len(j.followers) < c.cfg.MinISR {
			c.putProd(j)
			if done != nil {
				done(wire.ProduceResponse{
					CorrelationID: req.CorrelationID,
					Topic:         req.Topic,
					Partition:     req.Partition,
					Err:           wire.ErrNotEnoughReplicas,
				})
			}
			return
		}
		j.pm, j.leader, j.req, j.idempotent, j.done = pm, leader, req, idempotent, done
		leader.Produce(req, idempotent, allLeaderDone, j)
		return
	}

	// acks=0 / acks=1: leader append, async replication to followers.
	j := c.getProd()
	j.pm, j.leader, j.req, j.idempotent, j.done = pm, leader, req, idempotent, done
	leader.Produce(req, idempotent, ackLeaderDone, j)
}

// observeSpan records one cumulative record-latency sample per record
// of a successfully handled batch, measured from the record's producer
// arrival (wire.Record.Timestamp) to now. Internal topics ("__" prefix
// — the coordinator's offsets log, whose records carry their own
// commit-time epochs) are excluded so commit traffic never pollutes
// the data-path latency histograms.
func (c *Cluster) observeSpan(h *obs.Histogram, req *wire.ProduceRequest) {
	if h == nil || strings.HasPrefix(req.Topic, "__") {
		return
	}
	now := c.sim.Now()
	for _, rec := range req.Batch.Records {
		h.Observe(int64(now - rec.Timestamp))
	}
}

// ackLeaderDone completes an acks=0/1 produce once the leader appended:
// fan the batch out to followers, then answer the producer.
func ackLeaderDone(a any, resp wire.ProduceResponse) {
	j := a.(*prodJob)
	c := j.c
	if resp.Err == wire.ErrNone {
		c.observeSpan(c.hSpanAppend, &j.req)
		c.replicate(j.pm, j.leader, j.req, j.idempotent)
	}
	acks, done := j.req.Acks, j.done
	c.putProd(j)
	if acks != wire.AcksNone && done != nil {
		done(resp)
	}
}

// allLeaderDone continues an acks=all produce once the leader appended:
// send the batch to every live follower and wait for all acks.
func allLeaderDone(a any, resp wire.ProduceResponse) {
	j := a.(*prodJob)
	c := j.c
	if resp.Err == wire.ErrNone {
		c.observeSpan(c.hSpanAppend, &j.req)
	}
	if resp.Err != wire.ErrNone || len(j.followers) <= 1 {
		if resp.Err == wire.ErrNone {
			// No follower outstanding: the leader append is full
			// replication over the live set.
			c.observeSpan(c.hSpanReplicated, &j.req)
		}
		done := j.done
		c.putProd(j)
		if done != nil {
			done(resp)
		}
		return
	}
	j.resp = resp
	j.pending = len(j.followers) - 1
	for _, f := range j.followers[1:] {
		c.cReplications.Inc()
		c.trace.Emit(obs.LayerCluster, obs.EvReplicate, j.req.Batch.BaseSequence, int64(j.req.Partition), int64(f.ID()), j.req.Topic)
		s := c.getSend()
		s.j, s.f = j, f
		c.sim.AfterFunc(c.cfg.InterBrokerDelay, allSendFire, s)
	}
}

// allSendFire delivers one acks=all follower copy after the inter-broker
// delay. A leader that died in the window never serves the replication
// fetch: the request stays un-acked (the shared prodJob is abandoned to
// the garbage collector) and the producer's request timer handles it.
func allSendFire(a any) {
	s := a.(*sendJob)
	j, f := s.j, s.f
	j.c.putSend(s)
	if !j.leader.Up() {
		return
	}
	f.Produce(j.req, j.idempotent, allFollowerDone, j)
}

// allFollowerDone schedules the follower's ack back to the leader, one
// more inter-broker delay away.
func allFollowerDone(a any, _ wire.ProduceResponse) {
	j := a.(*prodJob)
	j.c.sim.AfterFunc(j.c.cfg.InterBrokerDelay, allAckFire, j)
}

// allAckFire counts one follower ack; the last one answers the producer.
func allAckFire(a any) {
	j := a.(*prodJob)
	j.pending--
	if j.pending == 0 {
		if j.resp.Err == wire.ErrNone {
			j.c.observeSpan(j.c.hSpanReplicated, &j.req)
		}
		done, resp := j.done, j.resp
		j.c.putProd(j)
		if done != nil {
			done(resp)
		}
	}
}

// replicate copies a batch to live followers asynchronously. Delivery is
// gated on the source broker still being up when the inter-broker delay
// elapses: replication is pull-based in Kafka, and a leader that crashed
// in the window takes its un-replicated tail with it.
func (c *Cluster) replicate(pm *partitionMeta, src *broker.Broker, req wire.ProduceRequest, idempotent bool) {
	for _, id := range pm.replicas {
		if id == src.ID() {
			continue
		}
		f := c.brokers[id]
		if !f.Up() {
			continue
		}
		c.cReplications.Inc()
		c.trace.Emit(obs.LayerCluster, obs.EvReplicate, req.Batch.BaseSequence, int64(req.Partition), int64(f.ID()), req.Topic)
		r := c.getRepl()
		r.src, r.f, r.req, r.idempotent = src, f, req, idempotent
		c.sim.AfterFunc(c.cfg.InterBrokerDelay, replicateFire, r)
	}
}

// replicateFire delivers one follower copy after the inter-broker delay.
func replicateFire(a any) {
	r := a.(*replJob)
	c, src, f, req, idempotent := r.c, r.src, r.f, r.req, r.idempotent
	c.putRepl(r)
	if !src.Up() {
		return
	}
	f.Produce(req, idempotent, nil, nil)
}

// HandleFetch routes a fetch to the partition leader.
func (c *Cluster) HandleFetch(req wire.FetchRequest, done func(wire.FetchResponse)) {
	leader := c.Leader(req.Topic, req.Partition)
	if leader == nil {
		if done != nil {
			done(wire.FetchResponse{
				CorrelationID: req.CorrelationID,
				Topic:         req.Topic,
				Partition:     req.Partition,
				Err:           wire.ErrUnknownTopicOrPartition,
			})
		}
		return
	}
	leader.HandleFetch(req, done)
}
