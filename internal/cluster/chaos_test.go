package cluster

import (
	"bytes"
	"testing"
	"time"

	"kafkarel/internal/broker"
	"kafkarel/internal/des"
	"kafkarel/internal/storage"
	"kafkarel/internal/wire"
)

// logDump renders a log's full contents (offset, key, payload) for
// byte-identical comparison.
func logDump(l *storage.Log) []byte {
	var buf bytes.Buffer
	l.Scan(func(e storage.Entry) bool {
		buf.WriteString(string(rune(e.Offset)))
		buf.WriteString(string(rune(e.Record.Key)))
		buf.Write(e.Record.Payload)
		buf.WriteByte(0)
		return true
	})
	return buf.Bytes()
}

// TestRecoverBrokerCatchUpDivergence is the satellite-3 coverage: a
// follower whose log diverged from the leader — first longer, then
// shorter — must truncate its divergent suffix and copy the leader's,
// ending byte-identical to the leader log.
func TestRecoverBrokerCatchUpDivergence(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	leader := c.Leader("t", 0)
	followerID := int32((leader.ID() + 1) % 3)
	follower := c.Broker(followerID)

	// Seed both with a shared prefix.
	for i := 0; i < 3; i++ {
		c.HandleProduce(produceReq(uint32(i), wire.AcksLeader, uint64(i+1)), nil)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	t.Run("longer than leader", func(t *testing.T) {
		if err := c.FailBroker(followerID); err != nil {
			t.Fatal(err)
		}
		// The downed follower's log grows a divergent suffix the leader
		// never saw (e.g. appends from a deposed leader epoch).
		follower.Start()
		follower.Log("t", 0).Append([]wire.Record{
			{Key: 100, Payload: []byte("divergent")},
			{Key: 101, Payload: []byte("divergent")},
		})
		follower.Stop()
		if err := c.RecoverBroker(followerID); err != nil {
			t.Fatal(err)
		}
		src, dst := leader.Log("t", 0), follower.Log("t", 0)
		if dst.End() != src.End() {
			t.Fatalf("follower end %d != leader end %d", dst.End(), src.End())
		}
		if !bytes.Equal(logDump(dst), logDump(src)) {
			t.Error("follower log not byte-identical to leader after catch-up")
		}
	})

	t.Run("shorter than leader", func(t *testing.T) {
		if err := c.FailBroker(followerID); err != nil {
			t.Fatal(err)
		}
		follower.Log("t", 0).TruncateTo(1)
		// Leader keeps appending while the follower is down.
		for i := 10; i < 14; i++ {
			c.HandleProduce(produceReq(uint32(i), wire.AcksLeader, uint64(i)), nil)
		}
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if err := c.RecoverBroker(followerID); err != nil {
			t.Fatal(err)
		}
		src, dst := leader.Log("t", 0), follower.Log("t", 0)
		if dst.End() != src.End() || dst.End() != 7 {
			t.Fatalf("follower end %d, leader end %d, want both 7", dst.End(), src.End())
		}
		if !bytes.Equal(logDump(dst), logDump(src)) {
			t.Error("follower log not byte-identical to leader after catch-up")
		}
	})
}

func TestCrashBrokerUncleanLosesAckedTail(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.Broker.FlushInterval = 100 * time.Millisecond
	c, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replication factor 1: the leader's unflushed tail has no other copy.
	if err := c.CreateTopic("t", 1, 1); err != nil {
		t.Fatal(err)
	}
	leaderID := c.Leader("t", 0).ID()
	var acked int
	sim.Schedule(10*time.Millisecond, func() {
		c.HandleProduce(produceReq(1, wire.AcksLeader, 1), func(r wire.ProduceResponse) {
			if r.Err == wire.ErrNone {
				acked++
			}
		})
	})
	sim.Schedule(20*time.Millisecond, func() {
		if err := c.CrashBrokerUnclean(leaderID); err != nil {
			t.Error(err)
		}
	})
	sim.Schedule(30*time.Millisecond, func() {
		if err := c.RecoverBroker(leaderID); err != nil {
			t.Error(err)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if acked != 1 {
		t.Fatalf("acked = %d, want 1", acked)
	}
	if end := c.Broker(leaderID).Log("t", 0).End(); end != 0 {
		t.Errorf("log end after unclean restart = %d, want 0 (acked record lost)", end)
	}
	if tr := c.Broker(leaderID).Stats().RecordsTruncated; tr != 1 {
		t.Errorf("RecordsTruncated = %d, want 1", tr)
	}
}

func TestReplicationGatedOnSourceUp(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	leaderID := c.Leader("t", 0).ID()
	sim.Schedule(time.Millisecond, func() {
		c.HandleProduce(produceReq(1, wire.AcksLeader, 1), nil)
	})
	// The leader dies right after appending + acking, inside the
	// inter-broker replication delay window: followers never get the copy.
	sim.Schedule(time.Millisecond+60*time.Microsecond, func() {
		if err := c.FailBroker(leaderID); err != nil {
			t.Error(err)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for id := int32(0); id < 3; id++ {
		if id == leaderID {
			continue
		}
		if end := c.Broker(id).Log("t", 0).End(); end != 0 {
			t.Errorf("follower %d received replica from dead leader (end=%d)", id, end)
		}
	}
}

func TestStatsAll(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	c.HandleProduce(produceReq(1, wire.AcksLeader, 1), nil)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	all := c.StatsAll()
	if len(all) != 3 {
		t.Fatalf("StatsAll len = %d", len(all))
	}
	var total broker.Stats
	for _, st := range all {
		total.RecordsAppended += st.RecordsAppended
	}
	if total.RecordsAppended != 3 {
		t.Errorf("cluster-wide appends = %d, want 3 (leader + 2 replicas)", total.RecordsAppended)
	}
}
