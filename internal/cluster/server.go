package cluster

import (
	"fmt"

	"kafkarel/internal/transport"
	"kafkarel/internal/wire"
)

// Server binds a cluster to the server side of a transport connection:
// it splits the inbound byte stream into frames, dispatches requests to
// the cluster, and writes responses back. One Server serves one
// connection, as one Kafka broker socket does.
type Server struct {
	cluster  *Cluster
	ep       *transport.Endpoint
	splitter wire.Splitter
	// DroppedFrames counts undecodable requests (corrupt after transport
	// reassembly should be impossible; this guards protocol bugs).
	DroppedFrames uint64
}

// NewServer attaches a cluster to the endpoint and starts serving.
func NewServer(c *Cluster, ep *transport.Endpoint) (*Server, error) {
	if c == nil || ep == nil {
		return nil, fmt.Errorf("cluster: NewServer with nil cluster or endpoint")
	}
	s := &Server{cluster: c, ep: ep}
	ep.OnReceive(s.onBytes)
	return s, nil
}

// ResetParser discards partial-frame state; call it when the underlying
// connection is reset so the new byte stream parses from a clean slate.
func (s *Server) ResetParser() { s.splitter = wire.Splitter{} }

func (s *Server) onBytes(chunk []byte) {
	frames, err := s.splitter.Push(chunk)
	if err != nil {
		// A framing error after reliable reassembly means a peer bug;
		// drop the connection's remaining input by resetting the
		// splitter.
		s.DroppedFrames++
		s.splitter = wire.Splitter{}
		return
	}
	for _, f := range frames {
		s.dispatch(f)
	}
}

func (s *Server) dispatch(f wire.FramePart) {
	switch f.API {
	case wire.APIProduce:
		req, err := wire.DecodeProduceRequest(f.Body)
		if err != nil {
			s.DroppedFrames++
			return
		}
		if req.Acks == wire.AcksNone {
			s.cluster.HandleProduce(req, nil)
			return
		}
		s.cluster.HandleProduce(req, func(resp wire.ProduceResponse) {
			s.reply(wire.APIProduce, resp.Encode(nil))
		})
	case wire.APIFetch:
		req, err := wire.DecodeFetchRequest(f.Body)
		if err != nil {
			s.DroppedFrames++
			return
		}
		s.cluster.HandleFetch(req, func(resp wire.FetchResponse) {
			s.reply(wire.APIFetch, resp.Encode(nil))
		})
	case wire.APIMetadata:
		req, err := wire.DecodeMetadataRequest(f.Body)
		if err != nil {
			s.DroppedFrames++
			return
		}
		resp := s.cluster.Metadata(req)
		s.reply(wire.APIMetadata, resp.Encode(nil))
	default:
		s.DroppedFrames++
	}
}

func (s *Server) reply(api uint16, body []byte) {
	// A broken server connection means the response is lost; the client's
	// request timeout covers it, exactly as with a dead TCP socket.
	_ = s.ep.Send(wire.EncodeFrame(api, body))
}
