package cluster

import (
	"fmt"

	"kafkarel/internal/transport"
	"kafkarel/internal/wire"
)

// Server binds a cluster to the server side of a transport connection:
// it splits the inbound byte stream into frames, dispatches requests to
// the cluster, and writes responses back. One Server serves one
// connection, as one Kafka broker socket does.
type Server struct {
	cluster  *Cluster
	ep       *transport.Endpoint
	splitter wire.Splitter
	dec      wire.Decoder
	bodyBuf  []byte // response-encoding scratch
	frameBuf []byte // frame-encoding scratch; Endpoint.Send copies
	// onProduce and onFetch are created once so the per-request dispatch
	// path builds no response-callback closures.
	onProduce func(wire.ProduceResponse)
	onFetch   func(wire.FetchResponse)
	// DroppedFrames counts undecodable requests (corrupt after transport
	// reassembly should be impossible; this guards protocol bugs).
	DroppedFrames uint64
}

// NewServer attaches a cluster to the endpoint and starts serving.
func NewServer(c *Cluster, ep *transport.Endpoint) (*Server, error) {
	if c == nil || ep == nil {
		return nil, fmt.Errorf("cluster: NewServer with nil cluster or endpoint")
	}
	s := &Server{cluster: c, ep: ep}
	s.onProduce = func(resp wire.ProduceResponse) {
		s.bodyBuf = resp.Encode(s.bodyBuf[:0])
		s.reply(wire.APIProduce, s.bodyBuf)
	}
	s.onFetch = func(resp wire.FetchResponse) {
		s.bodyBuf = resp.Encode(s.bodyBuf[:0])
		s.reply(wire.APIFetch, s.bodyBuf)
	}
	ep.OnReceive(s.onBytes)
	return s, nil
}

// ResetParser discards partial-frame state; call it when the underlying
// connection is reset so the new byte stream parses from a clean slate.
func (s *Server) ResetParser() { s.splitter = wire.Splitter{} }

func (s *Server) onBytes(chunk []byte) {
	frames, err := s.splitter.Push(chunk)
	if err != nil {
		// A framing error after reliable reassembly means a peer bug;
		// drop the connection's remaining input by resetting the
		// splitter.
		s.DroppedFrames++
		s.splitter = wire.Splitter{}
		return
	}
	for _, f := range frames {
		s.dispatch(f)
	}
}

func (s *Server) dispatch(f wire.FramePart) {
	switch f.API {
	case wire.APIProduce:
		req, err := s.dec.ProduceRequest(f.Body)
		if err != nil {
			s.DroppedFrames++
			return
		}
		// Interning hint: after the first request, topic strings decode
		// without allocating.
		if s.dec.Topic == "" {
			s.dec.Topic = req.Topic
		}
		// The cluster defers the append past this frame's lifetime (the
		// splitter buffer and the decoder's record scratch are both
		// reused), so the batch needs its own storage.
		req.Batch.Records = wire.CloneRecords(req.Batch.Records)
		if req.Acks == wire.AcksNone {
			s.cluster.HandleProduce(req, nil)
			return
		}
		s.cluster.HandleProduce(req, s.onProduce)
	case wire.APIFetch:
		req, err := s.dec.FetchRequest(f.Body)
		if err != nil {
			s.DroppedFrames++
			return
		}
		// Fetch handling is synchronous and the response is encoded into
		// the reply scratch inside the callback, so the broker's reused
		// record scratch is never retained.
		s.cluster.HandleFetch(req, s.onFetch)
	case wire.APIMetadata:
		req, err := wire.DecodeMetadataRequest(f.Body)
		if err != nil {
			s.DroppedFrames++
			return
		}
		resp := s.cluster.Metadata(req)
		s.bodyBuf = resp.Encode(s.bodyBuf[:0])
		s.reply(wire.APIMetadata, s.bodyBuf)
	default:
		s.DroppedFrames++
	}
}

func (s *Server) reply(api uint16, body []byte) {
	// A broken server connection means the response is lost; the client's
	// request timeout covers it, exactly as with a dead TCP socket.
	s.frameBuf = wire.AppendFrame(s.frameBuf[:0], api, body)
	_ = s.ep.Send(s.frameBuf)
}
