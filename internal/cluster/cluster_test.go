package cluster

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"kafkarel/internal/des"
	"kafkarel/internal/netem"
	"kafkarel/internal/transport"
	"kafkarel/internal/wire"
)

func newCluster(t *testing.T, sim *des.Simulator) *Cluster {
	t.Helper()
	c, err := New(sim, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", 1, 3); err != nil {
		t.Fatal(err)
	}
	return c
}

func produceReq(corr uint32, acks wire.RequiredAcks, keys ...uint64) wire.ProduceRequest {
	b := wire.RecordBatch{}
	for _, k := range keys {
		b.Records = append(b.Records, wire.Record{Key: k, Payload: []byte("p")})
	}
	return wire.ProduceRequest{CorrelationID: corr, Topic: "t", Partition: 0, Acks: acks, Batch: b}
}

func TestCreateTopicPlacement(t *testing.T) {
	sim := des.New()
	c, err := New(sim, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("multi", 6, 2); err != nil {
		t.Fatal(err)
	}
	md := c.Metadata(wire.MetadataRequest{Topic: "multi"})
	if md.Err != wire.ErrNone || len(md.Partitions) != 6 {
		t.Fatalf("metadata = %+v", md)
	}
	leaders := map[int32]int{}
	for _, p := range md.Partitions {
		leaders[p.Leader]++
		if len(p.Replicas) != 2 {
			t.Errorf("partition %d has %d replicas", p.Partition, len(p.Replicas))
		}
		if p.Replicas[0] != p.Leader {
			t.Errorf("partition %d leader %d not first replica %v", p.Partition, p.Leader, p.Replicas)
		}
	}
	// Round-robin across 3 brokers → each leads 2 of 6 partitions.
	for id, n := range leaders {
		if n != 2 {
			t.Errorf("broker %d leads %d partitions, want 2", id, n)
		}
	}
}

func TestCreateTopicValidation(t *testing.T) {
	sim := des.New()
	c, err := New(sim, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", 1, 1); err == nil {
		t.Error("duplicate topic accepted")
	}
	if err := c.CreateTopic("x", 0, 1); err == nil {
		t.Error("zero partitions accepted")
	}
	if err := c.CreateTopic("y", 1, 4); err == nil {
		t.Error("replication factor > brokers accepted")
	}
}

func TestAcksLeaderRoundTrip(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	var resp wire.ProduceResponse
	c.HandleProduce(produceReq(1, wire.AcksLeader, 10), func(r wire.ProduceResponse) { resp = r })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if resp.Err != wire.ErrNone || resp.BaseOffset != 0 {
		t.Errorf("resp = %+v", resp)
	}
	if c.Leader("t", 0).Log("t", 0).End() != 1 {
		t.Error("leader log empty")
	}
}

func TestAsyncReplicationReachesFollowers(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	c.HandleProduce(produceReq(1, wire.AcksLeader, 10, 11), nil)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for id := int32(0); id < 3; id++ {
		if end := c.Broker(id).Log("t", 0).End(); end != 2 {
			t.Errorf("broker %d log end = %d, want 2", id, end)
		}
	}
}

func TestAcksAllWaitsForFollowers(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.InterBrokerDelay = 10 * time.Millisecond
	c, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", 1, 3); err != nil {
		t.Fatal(err)
	}
	var at time.Duration = -1
	c.HandleProduce(produceReq(1, wire.AcksAll, 5), func(wire.ProduceResponse) { at = sim.Now() })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Response must wait at least one replication round trip (20 ms).
	if at < 20*time.Millisecond {
		t.Errorf("acks=all responded at %v, want >= 20ms", at)
	}
	for id := int32(0); id < 3; id++ {
		if end := c.Broker(id).Log("t", 0).End(); end != 1 {
			t.Errorf("broker %d log end = %d, want 1", id, end)
		}
	}
}

func TestAcksAllMinISR(t *testing.T) {
	sim := des.New()
	cfg := DefaultConfig()
	cfg.MinISR = 3
	c, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTopic("t", 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.FailBroker(2); err != nil {
		t.Fatal(err)
	}
	var resp wire.ProduceResponse
	c.HandleProduce(produceReq(1, wire.AcksAll, 5), func(r wire.ProduceResponse) { resp = r })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if resp.Err != wire.ErrNotEnoughReplicas {
		t.Errorf("Err = %v, want ErrNotEnoughReplicas", resp.Err)
	}
}

func TestAcksNoneNeverResponds(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	called := false
	c.HandleProduce(produceReq(1, wire.AcksNone, 7), func(wire.ProduceResponse) { called = true })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("acks=0 produced a response")
	}
	if c.Leader("t", 0).Log("t", 0).End() != 1 {
		t.Error("acks=0 record not persisted")
	}
}

func TestUnknownTopicProduce(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	var resp wire.ProduceResponse
	req := produceReq(9, wire.AcksLeader, 1)
	req.Topic = "ghost"
	c.HandleProduce(req, func(r wire.ProduceResponse) { resp = r })
	if resp.Err != wire.ErrUnknownTopicOrPartition {
		t.Errorf("Err = %v", resp.Err)
	}
}

func TestLeaderFailover(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	oldLeader := c.Leader("t", 0).ID()
	if err := c.FailBroker(oldLeader); err != nil {
		t.Fatal(err)
	}
	newLeader := c.Leader("t", 0)
	if newLeader == nil || newLeader.ID() == oldLeader {
		t.Fatal("no failover happened")
	}
	// Produce to the new leader still works.
	var resp wire.ProduceResponse
	c.HandleProduce(produceReq(2, wire.AcksLeader, 42), func(r wire.ProduceResponse) { resp = r })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if resp.Err != wire.ErrNone {
		t.Errorf("produce after failover: %v", resp.Err)
	}
}

func TestDeadLeaderDropsRequests(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	// Kill every broker: partition leaderless.
	for id := int32(0); id < 3; id++ {
		if err := c.FailBroker(id); err != nil {
			t.Fatal(err)
		}
	}
	called := false
	c.HandleProduce(produceReq(1, wire.AcksLeader, 1), func(wire.ProduceResponse) { called = true })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("leaderless partition responded")
	}
}

func TestRecoverBrokerCatchesUp(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	victim := c.Leader("t", 0).ID()
	if err := c.FailBroker(victim); err != nil {
		t.Fatal(err)
	}
	// Write while the victim is down.
	for i := 0; i < 5; i++ {
		c.HandleProduce(produceReq(uint32(i), wire.AcksLeader, uint64(i)), nil)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.RecoverBroker(victim); err != nil {
		t.Fatal(err)
	}
	if end := c.Broker(victim).Log("t", 0).End(); end != 5 {
		t.Errorf("recovered broker log end = %d, want 5", end)
	}
}

func TestFailUnknownBroker(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	if err := c.FailBroker(99); err == nil {
		t.Error("unknown broker accepted")
	}
	if err := c.RecoverBroker(-1); err == nil {
		t.Error("unknown broker accepted")
	}
}

func TestFetchFromLeader(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	c.HandleProduce(produceReq(1, wire.AcksLeader, 10, 11, 12), nil)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var resp wire.FetchResponse
	c.HandleFetch(wire.FetchRequest{Topic: "t", Partition: 0, Offset: 0, MaxRecords: 10},
		func(r wire.FetchResponse) { resp = r })
	if resp.Err != wire.ErrNone || len(resp.Records) != 3 {
		t.Errorf("fetch = %+v", resp)
	}
	var missing wire.FetchResponse
	c.HandleFetch(wire.FetchRequest{Topic: "ghost"}, func(r wire.FetchResponse) { missing = r })
	if missing.Err != wire.ErrUnknownTopicOrPartition {
		t.Errorf("ghost fetch err = %v", missing.Err)
	}
}

func TestValidationNew(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil simulator accepted")
	}
	cfg := DefaultConfig()
	cfg.InterBrokerDelay = -1
	if _, err := New(des.New(), cfg); err == nil {
		t.Error("negative inter-broker delay accepted")
	}
}

// TestServerOverTransport exercises the full request path: client
// endpoint → frames over lossy-capable transport → server dispatch →
// cluster → response frames back.
func TestServerOverTransport(t *testing.T) {
	sim := des.New()
	path, err := netem.NewPath(sim, netem.Config{}, netem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.NewConn(sim, path, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, sim)
	if _, err := NewServer(c, conn.Server); err != nil {
		t.Fatal(err)
	}

	var produce wire.ProduceResponse
	var fetch wire.FetchResponse
	var md wire.MetadataResponse
	var split wire.Splitter
	conn.Client.OnReceive(func(b []byte) {
		frames, err := split.Push(b)
		if err != nil {
			t.Errorf("client splitter: %v", err)
			return
		}
		for _, f := range frames {
			switch f.API {
			case wire.APIProduce:
				r, err := wire.DecodeProduceResponse(f.Body)
				if err != nil {
					t.Errorf("decode produce response: %v", err)
					continue
				}
				produce = r
				// Chain a fetch once produce is acked.
				fr := wire.FetchRequest{CorrelationID: 2, Topic: "t", Partition: 0, Offset: 0, MaxRecords: 10}
				if err := conn.Client.Send(wire.EncodeFrame(wire.APIFetch, fr.Encode(nil))); err != nil {
					t.Errorf("send fetch: %v", err)
				}
			case wire.APIFetch:
				r, err := wire.DecodeFetchResponse(f.Body)
				if err != nil {
					t.Errorf("decode fetch response: %v", err)
					continue
				}
				fetch = r
			case wire.APIMetadata:
				r, err := wire.DecodeMetadataResponse(f.Body)
				if err != nil {
					t.Errorf("decode metadata response: %v", err)
					continue
				}
				md = r
			}
		}
	})

	mreq := wire.MetadataRequest{CorrelationID: 9, Topic: "t"}
	if err := conn.Client.Send(wire.EncodeFrame(wire.APIMetadata, mreq.Encode(nil))); err != nil {
		t.Fatal(err)
	}
	preq := produceReq(1, wire.AcksLeader, 100, 101)
	if err := conn.Client.Send(wire.EncodeFrame(wire.APIProduce, preq.Encode(nil))); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if md.CorrelationID != 9 || len(md.Partitions) != 1 {
		t.Errorf("metadata = %+v", md)
	}
	if produce.CorrelationID != 1 || produce.Err != wire.ErrNone {
		t.Errorf("produce = %+v", produce)
	}
	if fetch.CorrelationID != 2 || len(fetch.Records) != 2 || fetch.Records[0].Key != 100 {
		t.Errorf("fetch = %+v", fetch)
	}
}

func TestServerDropsGarbage(t *testing.T) {
	sim := des.New()
	path, err := netem.NewPath(sim, netem.Config{}, netem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := transport.NewConn(sim, path, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, sim)
	srv, err := NewServer(c, conn.Server)
	if err != nil {
		t.Fatal(err)
	}
	// A syntactically valid frame with an unknown API.
	if err := conn.Client.Send(wire.EncodeFrame(250, []byte("junk"))); err != nil {
		t.Fatal(err)
	}
	// A produce frame with a corrupt body.
	if err := conn.Client.Send(wire.EncodeFrame(wire.APIProduce, []byte{1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.DroppedFrames != 2 {
		t.Errorf("DroppedFrames = %d, want 2", srv.DroppedFrames)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Error("nil args accepted")
	}
}

// Property: after any interleaving of produces, broker failures and
// recoveries, every live replica's log is a prefix of its partition
// leader's log (replication never diverges).
func TestPropertyReplicationPrefixConsistency(t *testing.T) {
	f := func(seed uint64, opsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		sim := des.New()
		c, err := New(sim, DefaultConfig())
		if err != nil {
			return false
		}
		if err := c.CreateTopic("t", 2, 3); err != nil {
			return false
		}
		key := uint64(0)
		ops := int(opsRaw%40) + 10
		for i := 0; i < ops; i++ {
			switch rng.IntN(5) {
			case 0: // fail a random broker (keep at least one up)
				up := 0
				for id := int32(0); id < 3; id++ {
					if c.Broker(id).Up() {
						up++
					}
				}
				if up > 1 {
					_ = c.FailBroker(int32(rng.IntN(3)))
				}
			case 1: // recover a random broker
				_ = c.RecoverBroker(int32(rng.IntN(3)))
			default: // produce a record to a random partition
				key++
				req := wire.ProduceRequest{
					Topic:     "t",
					Partition: int32(rng.IntN(2)),
					Acks:      wire.AcksLeader,
					Batch:     wire.RecordBatch{Records: []wire.Record{{Key: key}}},
				}
				c.HandleProduce(req, nil)
				if err := sim.Run(); err != nil {
					return false
				}
			}
		}
		// Recover everything so catch-up completes, then check prefixes.
		for id := int32(0); id < 3; id++ {
			if err := c.RecoverBroker(id); err != nil {
				return false
			}
		}
		if err := sim.Run(); err != nil {
			return false
		}
		for p := int32(0); p < 2; p++ {
			leader := c.Leader("t", p)
			if leader == nil {
				return false
			}
			llog := leader.Log("t", p)
			ref, err := llog.Read(0, int(llog.End()))
			if err != nil {
				return false
			}
			for id := int32(0); id < 3; id++ {
				rlog := c.Broker(id).Log("t", p)
				if rlog == nil || rlog.End() > llog.End() {
					return false
				}
				got, err := rlog.Read(0, int(rlog.End()))
				if err != nil {
					return false
				}
				for i := range got {
					if got[i].Record.Key != ref[i].Record.Key {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The server's produce path decodes requests zero-copy (payloads alias
// the connection's reused splitter buffer) and clones the batch before
// handing it to the cluster. This test replays that sequence and then
// scribbles over the wire buffer *before* the simulated append runs:
// the stored log must still hold the original payloads.
func TestProduceSurvivesSourceBufferReuse(t *testing.T) {
	sim := des.New()
	c := newCluster(t, sim)
	orig := [][]byte{[]byte("alpha"), []byte("beta-beta"), nil}
	req := wire.ProduceRequest{
		CorrelationID: 1, Topic: "t", Partition: 0, Acks: wire.AcksAll,
	}
	for i, p := range orig {
		req.Batch.Records = append(req.Batch.Records, wire.Record{Key: uint64(i + 1), Payload: p})
	}
	buf := req.Encode(nil)

	var dec wire.Decoder
	decoded, err := dec.ProduceRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	decoded.Batch.Records = wire.CloneRecords(decoded.Batch.Records)
	var resp wire.ProduceResponse
	c.HandleProduce(decoded, func(r wire.ProduceResponse) { resp = r })

	// Simulate the connection reusing its read buffer for the next frame
	// while the produce is still in flight in sim time.
	for i := range buf {
		buf[i] = 0xAA
	}
	sim.Run()
	if resp.Err != wire.ErrNone {
		t.Fatalf("produce failed: %v", resp.Err)
	}

	var fetched wire.FetchResponse
	c.HandleFetch(wire.FetchRequest{Topic: "t", Partition: 0, Offset: 0, MaxRecords: 10},
		func(r wire.FetchResponse) {
			fetched = r
			fetched.Records = wire.CloneRecords(r.Records)
		})
	if fetched.Err != wire.ErrNone || len(fetched.Records) != len(orig) {
		t.Fatalf("fetch = %+v", fetched)
	}
	for i, r := range fetched.Records {
		if !bytesEqual(r.Payload, orig[i]) {
			t.Errorf("record %d payload = %q, want %q", i, r.Payload, orig[i])
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
