GO ?= go

.PHONY: check build fmt vet test race bench bench-json bench-scaling bench-gate profile repro chaos-smoke shim-gate

## check: the full quality gate — formatting, build, vet, race-enabled
## tests, the retired-shim grep gate, and a fixed-seed chaos campaign.
check: fmt build vet race shim-gate chaos-smoke

## fmt: gofmt gate — fails listing any file that is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the tier-1 suite under the race detector; the exprun worker
## pool and every parallelised call path must stay race-clean.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench=. -benchmem

## bench-json: the observability benchmarks (obs overhead, timeline,
## exprun scaling, fleet) as a machine-readable artefact. EXPERIMENTS.md
## documents the JSON format.
bench-json:
	{ $(GO) test -run xxx -bench 'Observability|Timeline|ExprunScaling|Fleet' -benchmem -benchtime 3x . ; \
	  $(GO) test -run xxx -bench SpanPath -benchmem -benchtime 200000x . ; \
	  $(GO) test -run xxx -bench 'CommitPath|Rebalance' -benchmem -benchtime 2000x ./internal/coordinator ; } \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json

## bench-scaling: wall-time of figure reproduction vs worker count
## (EXPERIMENTS.md records the results).
bench-scaling:
	$(GO) test -run xxx -bench 'ExprunScaling|Fig3SweepScaling' -benchtime 3x .

## bench-gate: the allocation-regression gate. Reruns the fig7 scaling
## and fleet scaling benchmarks, converts them to JSON, and fails if
## ns/op or allocs/op regressed more than 20% against the committed
## BENCH_obs.json baseline. Keeps issue 5's hot-path wins locked in and
## issue 6's fleet fan-out honest. The fleet workload is ~4x shorter
## per op than fig7 and proportionally noisier at -benchtime 3x, so its
## ns gate is wider; its allocs gate is as deterministic as fig7's.
## CommitPath locks in the coordinator's pooled durable-commit path
## (4 allocs/op steady state) and, via the same substring,
## TxnCommitPath — the full transactional begin/produce/send-offset/
## two-phase-commit cycle; its per-op wall time is ~1us and noisy,
## so the ns gate is wide while the allocs gate stays tight. SpanPath
## locks in the per-record latency-span observation (~60ns, 0 allocs);
## a zero-alloc baseline cannot gate allocations, so
## TestSpanPathZeroAllocs enforces that half and the gate here watches
## wall time with a wide bar. Rebalance locks in the coordinator-side
## generation bump (six cooperative members, sticky assignor, join
## barrier through sync-to-Stable) — the control-plane path the
## cooperative protocol takes twice per membership change; like
## CommitPath its per-op wall time is noisy at the microsecond scale,
## so the ns gate is wide and the allocs gate does the real work.
bench-gate:
	{ $(GO) test -run xxx -bench 'ExprunScaling|FleetScaling' -benchmem -benchtime 3x . ; \
	  $(GO) test -run xxx -bench SpanPath -benchmem -benchtime 200000x . ; \
	  $(GO) test -run xxx -bench 'CommitPath|Rebalance' -benchmem -benchtime 2000x ./internal/coordinator ; } \
		| $(GO) run ./cmd/benchjson > BENCH_fresh.json
	$(GO) run ./cmd/benchgate -baseline BENCH_obs.json -fresh BENCH_fresh.json -match fig7
	$(GO) run ./cmd/benchgate -baseline BENCH_obs.json -fresh BENCH_fresh.json -match FleetScaling \
		-max-regression 0.40
	$(GO) run ./cmd/benchgate -baseline BENCH_obs.json -fresh BENCH_fresh.json -match CommitPath \
		-max-regression 0.60
	$(GO) run ./cmd/benchgate -baseline BENCH_obs.json -fresh BENCH_fresh.json -match SpanPath \
		-max-regression 0.60
	$(GO) run ./cmd/benchgate -baseline BENCH_obs.json -fresh BENCH_fresh.json -match Rebalance \
		-max-regression 0.60

## profile: CPU + heap profiles of a fixed-seed sequential Fig. 7
## reproduction (cpu.pprof / heap.pprof). Inspect with
## `go tool pprof -top cpu.pprof`.
profile:
	$(GO) run ./cmd/profile

repro:
	$(GO) run ./cmd/repro -n 20000 all

## chaos-smoke: a fixed-seed end-to-end fault-injection campaign (60
## trials per mode, exactly-once and at-least-once) with a two-member
## consumer group committing through the coordinator on every trial,
## verified against the producer, broker, and end-to-end delivery
## invariants, plus a 60-trial transactional campaign (consume-process-
## produce pipeline at read_committed, zombie/crash/unclean faults,
## VerifyTxn exactly-once invariants), plus a 60-trial cooperative-
## churn campaign (two six-member groups per trial under generated
## redelivery-storm plans — overlapping broker outages that leave the
## rf=3/min-ISR-2 offsets log readable but unwritable, with correlated
## consumer restarts — each trial verified by VerifyE2E + VerifyCoop
## and paired with an identically-seeded eager control run). Exits
## non-zero on any violation; the JSON scorecards land in
## chaos-scorecard.json, chaos-txn-scorecard.json and
## chaos-coop-scorecard.json (CI archives all three).
chaos-smoke:
	$(GO) run ./cmd/chaos -trials 60 -seed 20260806 -e2e -out chaos-scorecard.json
	$(GO) run ./cmd/chaos -txn -trials 60 -seed 20260806 -out chaos-txn-scorecard.json
	$(GO) run ./cmd/chaos -coop -trials 60 -seed 20260806 -out chaos-coop-scorecard.json

## shim-gate: issue 7 retired the consumer group's local committed-
## offsets map in favour of the coordinator's durable offsets log; this
## grep keeps the shim from quietly growing back.
shim-gate:
	@if grep -q 'committed map\[int32\]int64' internal/consumer/group.go; then \
		echo "internal/consumer/group.go regrew a local committed-offsets map;"; \
		echo "commits must flow through the coordinator's offsets log"; exit 1; fi
