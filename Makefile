GO ?= go

.PHONY: check build vet test race bench bench-scaling repro

## check: the full quality gate — build, vet, race-enabled tests.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the tier-1 suite under the race detector; the exprun worker
## pool and every parallelised call path must stay race-clean.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

## bench-scaling: wall-time of figure reproduction vs worker count
## (EXPERIMENTS.md records the results).
bench-scaling:
	$(GO) test -run xxx -bench 'ExprunScaling|Fig3SweepScaling' -benchtime 3x .

repro:
	$(GO) run ./cmd/repro -n 20000 all
