module kafkarel

go 1.22
