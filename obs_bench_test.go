package kafkarel_test

// Observability overhead study: the internal/obs registry must be cheap
// enough to leave on by default, and its fully-disabled (nil-handle)
// form must cost effectively nothing. The three benchmarks below run
// the identical Fig. 7 configuration (L=20%, B=2, at-least-once) with
// metrics disabled, metrics enabled, and metrics+tracing, so the deltas
// isolate the instrumentation cost. TestObsOverheadBudget enforces the
// ISSUE acceptance bar: the disabled registry may add at most 2% over a
// DisableMetrics run. Measured numbers live in EXPERIMENTS.md §obs.
//
//	go test -bench 'Fig7Observability' -benchmem

import (
	"io"
	"testing"
	"time"

	"kafkarel"
	"kafkarel/internal/obs"
)

func obsBenchExperiment(seed uint64) kafkarel.Experiment {
	return kafkarel.Experiment{
		Features: kafkarel.Features{
			MessageSize:    200,
			Timeliness:     5 * time.Second,
			DelayMs:        10,
			LossRate:       0.20,
			Semantics:      kafkarel.AtLeastOnce,
			BatchSize:      2,
			MessageTimeout: 500 * time.Millisecond,
		},
		Messages: benchMessages,
		Seed:     seed,
	}
}

// BenchmarkFig7ObservabilityDisabled is the baseline: every metric
// handle is nil, so instrumented code paths reduce to a nil check.
func BenchmarkFig7ObservabilityDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := obsBenchExperiment(uint64(i))
		e.DisableMetrics = true
		res, err := kafkarel.RunExperiment(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Pl, "Pl")
	}
}

// BenchmarkFig7ObservabilityEnabled runs with the default per-run
// registry attached (counters, gauges, queue-depth histogram).
func BenchmarkFig7ObservabilityEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := kafkarel.RunExperiment(obsBenchExperiment(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.SegmentsSent), "segments")
	}
}

// BenchmarkFig7ObservabilityTraced additionally records every lifecycle
// event into an in-memory ring (no JSONL sink).
func BenchmarkFig7ObservabilityTraced(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := obsBenchExperiment(uint64(i))
		e.Tracer = kafkarel.NewTracer(1 << 16)
		if _, err := kafkarel.RunExperiment(e); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(e.Tracer.Total()), "events")
	}
}

// BenchmarkFig7ObservabilityTimeline additionally samples the sim-time
// timeline every virtual second — 10x denser than the 10 s default, so
// the measured delta bounds the default's cost from above. Rows stay
// in memory; BenchmarkTimelineCSV isolates the sink cost.
func BenchmarkFig7ObservabilityTimeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := obsBenchExperiment(uint64(i))
		e.Timeline = kafkarel.NewTimeline(time.Second)
		res, err := kafkarel.RunExperiment(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Timeline.Rows())), "rows")
	}
}

// BenchmarkTimelineCSV measures rendering a captured timeline to CSV
// (the -timeline sink), separate from capturing it.
func BenchmarkTimelineCSV(b *testing.B) {
	e := obsBenchExperiment(1)
	e.Timeline = kafkarel.NewTimeline(time.Second)
	res, err := kafkarel.RunExperiment(e)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := res.Timeline.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// TestObsOverheadBudget asserts the tentpole's cost bar: with metrics
// enabled (the default), a Fig. 7 run must finish within 2% of the
// fully disabled run. Wall-clock on shared CI machines (and under the
// race detector) is noisy at the ±10% level, so both variants run
// interleaved and the minimum round — the least scheduler-disturbed
// observation — is compared against the 2% design bar plus an explicit
// noise allowance. The regression this guards against is a hot-path
// mistake (a lock, an allocation, reflection) that would cost 2-10x,
// far outside any noise band; the precise sub-2% figure is established
// by the benchmarks above and recorded in EXPERIMENTS.md.
func TestObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race detector instruments every atomic op; the 2% bar applies to production builds")
	}
	const rounds = 7
	const (
		vDisabled = iota // DisableMetrics: the nil-handle baseline
		vEnabled         // default registry
		vTimeline        // registry + timeline sampling every virtual 1 s
	)
	run := func(variant int, seed uint64) time.Duration {
		e := obsBenchExperiment(seed)
		switch variant {
		case vDisabled:
			e.DisableMetrics = true
		case vTimeline:
			e.Timeline = kafkarel.NewTimeline(time.Second)
		}
		start := time.Now()
		if _, err := kafkarel.RunExperiment(e); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Warm up every path once so lazy init does not bias round 0.
	for v := vDisabled; v <= vTimeline; v++ {
		run(v, 0)
	}
	minOf := func(d []time.Duration) time.Duration {
		m := d[0]
		for _, v := range d[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	var off, on, tl []time.Duration
	for r := 0; r < rounds; r++ {
		off = append(off, run(vDisabled, uint64(r)))
		on = append(on, run(vEnabled, uint64(r)))
		tl = append(tl, run(vTimeline, uint64(r)))
	}
	base, instr, timeline := minOf(off), minOf(on), minOf(tl)
	noise := base / 8 // ±12.5% scheduler/frequency jitter allowance
	if noise < 2*time.Millisecond {
		noise = 2 * time.Millisecond
	}
	budget := base + base/50 + noise // 2% design bar + noise
	t.Logf("disabled min %v, enabled min %v (delta %+.2f%%), timeline min %v (delta %+.2f%%), budget %v",
		base, instr, 100*(float64(instr)-float64(base))/float64(base),
		timeline, 100*(float64(timeline)-float64(base))/float64(base), budget)
	if instr > budget {
		t.Errorf("metrics overhead too high: enabled %v > budget %v (disabled %v)", instr, budget, base)
	}
	// The timeline samples at virtual ticks, never per event, so even at
	// 10x the default density it must stay inside the same 2% bar.
	if timeline > budget {
		t.Errorf("timeline overhead too high: %v > budget %v (disabled %v)", timeline, budget, base)
	}
}

// spanPathObserve plays one delivered record through the full span set
// of the delivery path — wire send, broker append, replication,
// producer ack, consumer delivery, durable commit — exactly the
// histogram writes the instrumented components issue per record.
func spanPathObserve(lat int64, spans *[6]*obs.Histogram) {
	for _, h := range spans {
		h.Observe(lat)
	}
}

func spanPathHists(o *obs.Obs) [6]*obs.Histogram {
	return [6]*obs.Histogram{
		o.Histogram(obs.MSpanSend, obs.LatencyBounds),
		o.Histogram(obs.MSpanAppend, obs.LatencyBounds),
		o.Histogram(obs.MSpanReplicated, obs.LatencyBounds),
		o.Histogram(obs.MSpanAck, obs.LatencyBounds),
		o.Histogram(obs.MSpanDelivery, obs.LatencyBounds),
		o.Histogram(obs.MSpanCommit, obs.LatencyBounds),
	}
}

// BenchmarkSpanPath measures the per-record latency-span cost with the
// registry attached: six bounded-bucket histogram observes (bucket walk
// + atomic add + max CAS), zero allocations.
func BenchmarkSpanPath(b *testing.B) {
	o := &obs.Obs{Registry: obs.NewRegistry()}
	spans := spanPathHists(o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spanPathObserve(int64(i%int(time.Minute)), &spans)
	}
}

// BenchmarkSpanPathDisabled is the nil-handle form: each observe must
// reduce to a nil check.
func BenchmarkSpanPathDisabled(b *testing.B) {
	var o *obs.Obs
	spans := spanPathHists(o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spanPathObserve(int64(i%int(time.Minute)), &spans)
	}
}

// TestSpanPathZeroAllocs enforces the span hot-path allocation budget
// directly (the bench gate cannot flag a regression from a zero
// baseline): observing a record's spans allocates nothing, enabled or
// disabled.
func TestSpanPathZeroAllocs(t *testing.T) {
	o := &obs.Obs{Registry: obs.NewRegistry()}
	enabled := spanPathHists(o)
	disabled := spanPathHists(nil)
	var lat int64
	if n := testing.AllocsPerRun(1000, func() {
		lat += 17
		spanPathObserve(lat, &enabled)
	}); n != 0 {
		t.Errorf("enabled span path allocates %.1f per record", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		lat += 17
		spanPathObserve(lat, &disabled)
	}); n != 0 {
		t.Errorf("disabled span path allocates %.1f per record", n)
	}
}
