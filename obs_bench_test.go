package kafkarel_test

// Observability overhead study: the internal/obs registry must be cheap
// enough to leave on by default, and its fully-disabled (nil-handle)
// form must cost effectively nothing. The three benchmarks below run
// the identical Fig. 7 configuration (L=20%, B=2, at-least-once) with
// metrics disabled, metrics enabled, and metrics+tracing, so the deltas
// isolate the instrumentation cost. TestObsOverheadBudget enforces the
// ISSUE acceptance bar: the disabled registry may add at most 2% over a
// DisableMetrics run. Measured numbers live in EXPERIMENTS.md §obs.
//
//	go test -bench 'Fig7Observability' -benchmem

import (
	"testing"
	"time"

	"kafkarel"
)

func obsBenchExperiment(seed uint64) kafkarel.Experiment {
	return kafkarel.Experiment{
		Features: kafkarel.Features{
			MessageSize:    200,
			Timeliness:     5 * time.Second,
			DelayMs:        10,
			LossRate:       0.20,
			Semantics:      kafkarel.AtLeastOnce,
			BatchSize:      2,
			MessageTimeout: 500 * time.Millisecond,
		},
		Messages: benchMessages,
		Seed:     seed,
	}
}

// BenchmarkFig7ObservabilityDisabled is the baseline: every metric
// handle is nil, so instrumented code paths reduce to a nil check.
func BenchmarkFig7ObservabilityDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := obsBenchExperiment(uint64(i))
		e.DisableMetrics = true
		res, err := kafkarel.RunExperiment(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Pl, "Pl")
	}
}

// BenchmarkFig7ObservabilityEnabled runs with the default per-run
// registry attached (counters, gauges, queue-depth histogram).
func BenchmarkFig7ObservabilityEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := kafkarel.RunExperiment(obsBenchExperiment(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.SegmentsSent), "segments")
	}
}

// BenchmarkFig7ObservabilityTraced additionally records every lifecycle
// event into an in-memory ring (no JSONL sink).
func BenchmarkFig7ObservabilityTraced(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := obsBenchExperiment(uint64(i))
		e.Tracer = kafkarel.NewTracer(1 << 16)
		if _, err := kafkarel.RunExperiment(e); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(e.Tracer.Total()), "events")
	}
}

// TestObsOverheadBudget asserts the tentpole's cost bar: with metrics
// enabled (the default), a Fig. 7 run must finish within 2% of the
// fully disabled run. Wall-clock on shared CI machines (and under the
// race detector) is noisy at the ±10% level, so both variants run
// interleaved and the minimum round — the least scheduler-disturbed
// observation — is compared against the 2% design bar plus an explicit
// noise allowance. The regression this guards against is a hot-path
// mistake (a lock, an allocation, reflection) that would cost 2-10x,
// far outside any noise band; the precise sub-2% figure is established
// by the benchmarks above and recorded in EXPERIMENTS.md.
func TestObsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race detector instruments every atomic op; the 2% bar applies to production builds")
	}
	const rounds = 7
	run := func(disable bool, seed uint64) time.Duration {
		e := obsBenchExperiment(seed)
		e.DisableMetrics = disable
		start := time.Now()
		if _, err := kafkarel.RunExperiment(e); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Warm up both paths once so lazy init does not bias round 0.
	run(true, 0)
	run(false, 0)
	minOf := func(d []time.Duration) time.Duration {
		m := d[0]
		for _, v := range d[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	var off, on []time.Duration
	for r := 0; r < rounds; r++ {
		off = append(off, run(true, uint64(r)))
		on = append(on, run(false, uint64(r)))
	}
	base, instr := minOf(off), minOf(on)
	noise := base / 8 // ±12.5% scheduler/frequency jitter allowance
	if noise < 2*time.Millisecond {
		noise = 2 * time.Millisecond
	}
	budget := base + base/50 + noise // 2% design bar + noise
	t.Logf("disabled min %v, enabled min %v (delta %+.2f%%), budget %v",
		base, instr, 100*(float64(instr)-float64(base))/float64(base), budget)
	if instr > budget {
		t.Errorf("metrics overhead too high: enabled %v > budget %v (disabled %v)", instr, budget, base)
	}
}
