//go:build race

package kafkarel_test

// raceEnabled reports whether the race detector is compiled in. TSan
// intercepts every atomic operation, which inflates the observability
// hot path far beyond its production cost, so timing-budget tests skip
// themselves under -race.
const raceEnabled = true
