// Command benchgate compares a fresh benchmark JSON file (the benchjson
// format) against the committed baseline BENCH_obs.json and fails when
// a gated benchmark regressed. It is the enforcement half of issue 5's
// allocation overhaul: the ~10x alloc reduction stays locked in because
// CI reruns the fig7 scaling benchmarks and rejects any change that
// gives the wins back.
//
//	make bench-gate
//
// Gated metrics per matching benchmark:
//
//   - allocs_per_op: deterministic for the fixed-seed fig7 workload, so
//     the threshold catches real hot-path regressions, not noise;
//   - ns_per_op: noisier on shared CI hosts, hence the generous 20%
//     default tolerance — it exists to catch order-of-magnitude
//     accidents (an O(n^2) slip, a lost pool), not 5% drift.
//
// Benchmarks present in only one file are reported but never fatal, so
// adding or renaming a benchmark does not require a lockstep baseline
// update.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Result mirrors cmd/benchjson's output element.
type Result struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	return byName, nil
}

// regression returns the fractional increase of cur over base, or 0
// when base is zero (nothing to compare against).
func regression(base, cur float64) float64 {
	if base <= 0 {
		return 0
	}
	return cur/base - 1
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_obs.json", "committed baseline JSON")
	freshPath := flag.String("fresh", "", "fresh benchmark JSON to check (required)")
	match := flag.String("match", "fig7", "substring selecting gated benchmarks")
	maxRegression := flag.Float64("max-regression", 0.20, "max fractional increase allowed in ns_per_op / allocs_per_op")
	flag.Parse()
	if *freshPath == "" {
		return fmt.Errorf("-fresh is required")
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		return err
	}
	fresh, err := load(*freshPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(fresh))
	for name := range fresh {
		if strings.Contains(name, *match) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var checked, failed int
	for _, name := range names {
		cur := fresh[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Printf("SKIP %s: not in baseline\n", name)
			continue
		}
		checked++
		bad := false
		if r := regression(base.NsPerOp, cur.NsPerOp); r > *maxRegression {
			fmt.Printf("FAIL %s: ns_per_op %.0f -> %.0f (+%.1f%%, limit +%.0f%%)\n",
				name, base.NsPerOp, cur.NsPerOp, 100*r, 100**maxRegression)
			bad = true
		}
		if base.AllocsPerOp != nil && cur.AllocsPerOp != nil {
			if r := regression(*base.AllocsPerOp, *cur.AllocsPerOp); r > *maxRegression {
				fmt.Printf("FAIL %s: allocs_per_op %.0f -> %.0f (+%.1f%%, limit +%.0f%%)\n",
					name, *base.AllocsPerOp, *cur.AllocsPerOp, 100*r, 100**maxRegression)
				bad = true
			}
		}
		if bad {
			failed++
		} else {
			fmt.Printf("ok   %s: ns %+.1f%%", name, 100*regression(base.NsPerOp, cur.NsPerOp))
			if base.AllocsPerOp != nil && cur.AllocsPerOp != nil {
				fmt.Printf(", allocs %+.1f%%", 100*regression(*base.AllocsPerOp, *cur.AllocsPerOp))
			}
			fmt.Println()
		}
	}
	var missing []string
	for name := range baseline {
		if strings.Contains(name, *match) {
			if _, ok := fresh[name]; !ok {
				missing = append(missing, name)
			}
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("SKIP %s: in baseline but not in fresh run\n", name)
	}
	if checked == 0 {
		return fmt.Errorf("no benchmarks matching %q present in both files", *match)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d gated benchmarks regressed beyond %.0f%%", failed, checked, 100**maxRegression)
	}
	fmt.Printf("bench-gate: %d benchmarks within limits\n", checked)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
