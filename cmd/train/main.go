// Command train fits the paper's ANN prediction model (Eq. 1) on a
// dataset collected by cmd/collect and writes the trained predictor as
// JSON, reporting held-out accuracy (the paper's bar: MAE < 0.02).
//
// Usage:
//
//	train [-arch paper|compact] [-epochs n] [-seed n] -data dataset.csv -o model.json
package main

import (
	"flag"
	"fmt"
	"os"

	"kafkarel/internal/core"
	"kafkarel/internal/features"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	data := fs.String("data", "", "training CSV (from cmd/collect)")
	out := fs.String("o", "model.json", "output model path")
	arch := fs.String("arch", "compact", "network architecture: paper (200/200/200/64, Sec. III-G) or compact")
	epochs := fs.Int("epochs", 0, "override training epochs (0 = architecture default)")
	seed := fs.Uint64("seed", 1, "random seed")
	target := fs.Float64("target-mae", 0.01, "early-stop training MAE (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("missing -data")
	}
	f, err := os.Open(*data)
	if err != nil {
		return err
	}
	ds, err := features.ReadCSV(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	cfg := core.TrainConfig{Seed: *seed, TargetMAE: *target, EpochOverride: *epochs}
	switch *arch {
	case "paper":
		cfg.Architecture = core.ArchitecturePaper
	case "compact":
		cfg.Architecture = core.ArchitectureCompact
	default:
		return fmt.Errorf("unknown architecture %q", *arch)
	}

	fmt.Fprintf(os.Stderr, "training on %d samples (%s architecture)\n", len(ds), *arch)
	pred, metrics, err := core.Train(ds, cfg)
	if err != nil {
		return err
	}
	for sem, m := range metrics.PerSemantics {
		fmt.Fprintf(os.Stderr, "semantics %d: train=%d test=%d MAE=%.4f RMSE=%.4f epochs=%d\n",
			sem, m.TrainSamples, m.TestSamples, m.MAE, m.RMSE, m.Epochs)
	}
	fmt.Fprintf(os.Stderr, "pooled held-out MAE=%.4f RMSE=%.4f (paper bar: 0.02)\n", metrics.MAE, metrics.RMSE)

	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := pred.Save(of); err != nil {
		_ = of.Close()
		return err
	}
	if err := of.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "model written to %s\n", *out)
	return nil
}
