package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"kafkarel/internal/core"
	"kafkarel/internal/features"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	var ds features.Dataset
	for _, l := range []float64{0, 0.1, 0.2, 0.3} {
		for _, b := range []int{1, 2, 5} {
			ds = append(ds, features.Sample{
				X: features.Vector{
					MessageSize: 200, Timeliness: time.Second,
					LossRate: l, Semantics: features.SemanticsAtLeastOnce,
					BatchSize: b, MessageTimeout: time.Second,
				},
				Pl: l / float64(b),
			})
		}
	}
	path := filepath.Join(t.TempDir(), "ds.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -data accepted")
	}
	if err := run([]string{"-data", "/does/not/exist.csv"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-data", writeDataset(t), "-arch", "bogus"}); err == nil {
		t.Error("unknown architecture accepted")
	}
}

func TestRunTrainsAndSaves(t *testing.T) {
	data := writeDataset(t)
	out := filepath.Join(t.TempDir(), "model.json")
	if err := run([]string{"-data", data, "-o", out, "-epochs", "100"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := core.Load(f); err != nil {
		t.Fatalf("saved model unreadable: %v", err)
	}
}
