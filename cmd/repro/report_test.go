package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"kafkarel/internal/exprun"
	"kafkarel/internal/obs"
	"kafkarel/internal/report"
)

// TestReportDynamicRunAcceptance is the ISSUE acceptance check for the
// run report: the Table-II-style dynamic run must reconfigure at least
// twice, and the per-phase table's totals (sums of timeline interval
// deltas) must equal the end-of-run counters from the result.
func TestReportDynamicRunAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full dynamic run; skipped in -short")
	}
	res, events, err := reportDynamicRun(4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := report.Build(res, events, report.Options{})
	if err != nil {
		t.Fatal(err)
	}

	switches := 0
	for _, ann := range rep.Annotations {
		if ann.Kind == obs.AnnConfigSwitch {
			switches++
		}
	}
	if switches < 2 {
		t.Errorf("config_switch annotations = %d, want >= 2 on the dynamic run", switches)
	}
	if len(rep.Phases) < 3 {
		t.Errorf("phases = %d, want >= 3 (initial + two switches)", len(rep.Phases))
	}

	// The cross-check: Verify compares timeline column sums against the
	// producer counts and the metrics snapshot.
	if err := rep.Verify(); err != nil {
		t.Errorf("report cross-check failed: %v", err)
	}
	// And independently: per-phase sums equal the totals equal the
	// end-of-run counters.
	var acked, lost, dup uint64
	for _, p := range rep.Phases {
		acked += p.Acked
		lost += p.Lost
		dup += p.DupAppends
	}
	if acked != rep.Totals.Acked || lost != rep.Totals.Lost || dup != rep.Totals.DupAppends {
		t.Errorf("phase sums (%d/%d/%d) != totals (%d/%d/%d)",
			acked, lost, dup, rep.Totals.Acked, rep.Totals.Lost, rep.Totals.DupAppends)
	}
	if acked != res.Producer.Delivered {
		t.Errorf("phase acked %d != producer delivered %d", acked, res.Producer.Delivered)
	}
	if lost != res.Producer.Lost {
		t.Errorf("phase lost %d != producer lost %d", lost, res.Producer.Lost)
	}
	if dup != res.Metrics.BrokerDupAppends {
		t.Errorf("phase dup-appends %d != metrics %d", dup, res.Metrics.BrokerDupAppends)
	}

	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## Phases", "config_switch", "P_l", "## Timeline"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report lacks %q:\n%s", want, out)
		}
	}
}

// TestReportTimelineCSVParallelByteIdentical is the determinism
// acceptance check: timeline CSVs of a batch of dynamic runs fanned out
// over the experiment pool must be byte-identical for every worker
// count (each run is seed-deterministic; worker count is a pure
// wall-clock lever).
func TestReportTimelineCSVParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full dynamic runs; skipped in -short")
	}
	batch := func(workers int) []byte {
		seeds := []uint64{3, 4, 5, 6}
		csvs, err := exprun.Map(context.Background(), seeds,
			func(_ context.Context, _ int, seed uint64) ([]byte, error) {
				res, _, err := reportDynamicRun(1200, seed)
				if err != nil {
					return nil, err
				}
				var buf bytes.Buffer
				if err := res.Timeline.WriteCSV(&buf); err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			}, exprun.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return bytes.Join(csvs, []byte("====\n"))
	}
	base := batch(1)
	for _, workers := range []int{4, 8} {
		if got := batch(workers); !bytes.Equal(base, got) {
			t.Errorf("timeline CSVs differ between workers=1 and workers=%d", workers)
		}
	}
}

// TestRunReportSubcommand smoke-tests the CLI path end to end.
func TestRunReportSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("full dynamic run; skipped in -short")
	}
	out := captureStdout(t, func() error {
		return run(context.Background(), []string{"-q", "-n", "1500", "report"})
	})
	if !bytes.Contains(out, []byte("## Phases")) {
		t.Errorf("report subcommand output lacks the phase table:\n%s", out)
	}
}
