// Command repro regenerates every table and figure in the paper's
// evaluation section from the simulated testbed, printing TSV series
// suitable for plotting. Each artefact's independent experiments fan
// out over a worker pool; for a fixed seed the output is byte-identical
// for every -parallel value.
//
// Usage:
//
//	repro [-n messages] [-seed n] [-parallel workers] [-progress every] [-csv dir] <artefact>
//
// where artefact is one of: fig4 fig5 fig6 fig7 fig8 fig9 table1 table2
// ann-accuracy sensitivity throughput latency all. -csv additionally
// writes the throughput and latency figure families as CSV artefacts
// into the given directory.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"text/tabwriter"
	"time"

	"kafkarel/internal/dynconf"
	"kafkarel/internal/exprun"
	"kafkarel/internal/features"
	"kafkarel/internal/figures"
	"kafkarel/internal/kpi"
	"kafkarel/internal/netem"
	"kafkarel/internal/obs"
	"kafkarel/internal/report"
	"kafkarel/internal/sweep"
	"kafkarel/internal/testbed"
	"kafkarel/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	messages := fs.Int("n", 20000, "messages per experiment point")
	seed := fs.Uint64("seed", 1, "random seed")
	quiet := fs.Bool("q", false, "suppress progress output")
	parallel := fs.Int("parallel", 0, "experiment workers (0 = GOMAXPROCS); output is identical for any value")
	progress := fs.Int("progress", 10, "print a progress line every N experiments (0 = quiet)")
	csvDir := fs.String("csv", "", "also write figure-family CSV artefacts into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: repro [-n messages] [-seed n] [-parallel workers] [-progress every] [-csv dir] <fig3|fig4|fig5|fig6|fig7|fig8|fig9|table1|table2|ann-accuracy|sensitivity|throughput|latency|trace|report|all>")
	}
	opts := figures.Options{Messages: *messages, Seed: *seed, Workers: *parallel, Context: ctx}
	// Each artefact gets a fresh progress reporter: its counters are
	// per-batch.
	withProgress := func(o figures.Options, label string) figures.Options {
		if !*quiet && *progress > 0 {
			o.Progress = exprun.NewReporter(os.Stderr, label, *progress).Progress
		}
		return o
	}
	artefacts := map[string]func(figures.Options) error{
		"fig3":         fig3,
		"fig4":         fig4,
		"fig5":         fig5,
		"fig6":         fig6,
		"fig7":         fig7,
		"fig8":         fig8,
		"fig9":         fig9,
		"table1":       table1,
		"table2":       table2,
		"ann-accuracy": annAccuracy,
		"sensitivity":  sensitivity,
		"throughput":   func(o figures.Options) error { return throughput(o, *csvDir) },
		"latency":      func(o figures.Options) error { return latency(o, *csvDir) },
		"trace":        traceRun,
		"report":       reportRun,
	}
	name := fs.Arg(0)
	if name == "all" {
		for _, key := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "throughput", "latency", "ann-accuracy", "sensitivity", "table2"} {
			fmt.Printf("==== %s ====\n", key)
			if err := artefacts[key](withProgress(opts, key)); err != nil {
				return fmt.Errorf("%s: %w", key, err)
			}
			fmt.Println()
		}
		return nil
	}
	fn, ok := artefacts[name]
	if !ok {
		return fmt.Errorf("unknown artefact %q", name)
	}
	return fn(withProgress(opts, name))
}

func semName(s int) string {
	switch s {
	case features.SemanticsAtMostOnce:
		return "at-most-once"
	case features.SemanticsAtLeastOnce:
		return "at-least-once"
	case features.SemanticsExactlyOnce:
		return "exactly-once"
	}
	return fmt.Sprintf("sem%d", s)
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func fig3(figures.Options) error {
	fmt.Println("# Fig. 3: training data collection design (two feature subspaces)")
	normal := sweep.NormalGrid()
	abnormal := sweep.AbnormalGrid()
	w := newTab()
	fmt.Fprintln(w, "subspace\tcondition\teffective features swept\texperiments")
	fmt.Fprintf(w, "normal\tD<200ms, L=0\tsemantics, M, To, delta\t%d\n", len(normal))
	fmt.Fprintf(w, "abnormal\tfaults injected\tsemantics, M, D, L, B\t%d\n", len(abnormal))
	full := 2 * 3 * 5 * 4 * 3 * 6 * 4 // cross product of all feature ranges
	fmt.Fprintf(w, "full cross product (avoided)\t\t\t%d\n", full)
	return w.Flush()
}

func fig4(o figures.Options) error {
	points, err := figures.Fig4(o)
	if err != nil {
		return err
	}
	fmt.Println("# Fig. 4: Pl vs message size M (D=100ms, L=19%, To=1500ms, full load)")
	w := newTab()
	fmt.Fprintln(w, "M_bytes\tsemantics\tPl\tPd")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%s\t%.4f\t%.4f\n", p.MessageSize, semName(p.Semantics), p.Pl, p.Pd)
	}
	return w.Flush()
}

func fig5(o figures.Options) error {
	points, err := figures.Fig5(o)
	if err != nil {
		return err
	}
	fmt.Println("# Fig. 5: Pl vs message timeout To (no faults, full load, M=200B)")
	w := newTab()
	fmt.Fprintln(w, "To_ms\tsemantics\tPl")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%s\t%.4f\n", p.Timeout/time.Millisecond, semName(p.Semantics), p.Pl)
	}
	return w.Flush()
}

func fig6(o figures.Options) error {
	points, err := figures.Fig6(o)
	if err != nil {
		return err
	}
	fmt.Println("# Fig. 6: Pl vs polling interval δ (To=500ms, no faults, M=200B, at-most-once)")
	w := newTab()
	fmt.Fprintln(w, "delta_ms\tPl")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%.4f\n", p.PollInterval/time.Millisecond, p.Pl)
	}
	return w.Flush()
}

func fig7(o figures.Options) error {
	points, err := figures.Fig7(o)
	if err != nil {
		return err
	}
	fmt.Println("# Fig. 7: Pl vs packet loss L for batch sizes B (M=200B, To=500ms, full load)")
	w := newTab()
	fmt.Fprintln(w, "L\tB\tsemantics\tPl")
	for _, p := range points {
		fmt.Fprintf(w, "%.2f\t%d\t%s\t%.4f\n", p.LossRate, p.BatchSize, semName(p.Semantics), p.Pl)
	}
	return w.Flush()
}

func fig8(o figures.Options) error {
	points, err := figures.Fig8(o)
	if err != nil {
		return err
	}
	fmt.Println("# Fig. 8: Pd vs batch size B (at-least-once, M=200B, D=100ms, To=3s)")
	w := newTab()
	fmt.Fprintln(w, "B\tL\tPd\tPl")
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%.2f\t%.4f\t%.4f\n", p.BatchSize, p.LossRate, p.Pd, p.Pl)
	}
	return w.Flush()
}

func fig9(o figures.Options) error {
	series, err := figures.Fig9(o.Seed)
	if err != nil {
		return err
	}
	fmt.Println("# Fig. 9: network trace (Pareto delay, Gilbert-Elliot loss)")
	w := newTab()
	fmt.Fprintln(w, "t_s\tdelay_ms\tloss")
	for _, p := range series {
		fmt.Fprintf(w, "%.0f\t%.1f\t%.3f\n", p.At.Seconds(), p.DelayMs, p.Loss)
	}
	return w.Flush()
}

func table1(o figures.Options) error {
	res, err := figures.Table1(o)
	if err != nil {
		return err
	}
	fmt.Println("# Table I (empirical): message state cases (at-least-once, D=100ms, L=15%, retries on)")
	w := newTab()
	fmt.Fprintln(w, "case\ttransitions\tcount\tshare")
	desc := map[string]string{
		"case1": "I",
		"case2": "II",
		"case3": "II -> tau_r*III",
		"case4": "II -> tau_r*III -> IV",
	}
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.4f\n", r.Case, desc[r.Case.String()], r.Count, r.Share)
	}
	fmt.Fprintf(w, "case5\tII -> ... -> V -> tau_d*VI\t%d\t%.4f\n",
		res.Case5, float64(res.Case5)/float64(res.Total))
	return w.Flush()
}

func table2(o figures.Options) error {
	fmt.Println("# Table II: overall loss/duplicate rates, static default vs dynamic configuration")
	fmt.Fprintln(os.Stderr, "(full pipeline: per-stream sweep + training + schedule + evaluation; this takes a while)")
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	outcomes, err := dynconf.TableIIContext(ctx, nil, dynconf.Options{
		Messages:      o.Messages,
		Seed:          o.Seed,
		TrainMessages: o.Messages / 8,
		Workers:       o.Workers,
		Progress:      func(s string) { fmt.Fprintln(os.Stderr, s) },
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "stream\tweights\tRl_default\tRl_dynamic\tRd_default\tRd_dynamic\treconfigs")
	for _, oc := range outcomes {
		fmt.Fprintf(w, "%s\t%.1f,%.1f,%.1f,%.1f\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t%d\n",
			oc.Profile.Name,
			oc.Profile.Weights[0], oc.Profile.Weights[1], oc.Profile.Weights[2], oc.Profile.Weights[3],
			100*oc.DefaultRl, 100*oc.DynamicRl, 100*oc.DefaultRd, 100*oc.DynamicRd,
			oc.Reconfigurations)
	}
	return w.Flush()
}

func annAccuracy(o figures.Options) error {
	fmt.Println("# ANN accuracy: predicted vs measured on the held-out split (paper: MAE < 0.02)")
	res, err := figures.Accuracy(o)
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "semantics\ttrain_n\ttest_n\tMAE\tRMSE\tepochs")
	for sem, m := range res.Metrics.PerSemantics {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.4f\t%.4f\t%d\n",
			semName(sem), m.TrainSamples, m.TestSamples, m.MAE, m.RMSE, m.Epochs)
	}
	fmt.Fprintf(w, "pooled\t\t\t%.4f\t%.4f\t\n", res.Metrics.MAE, res.Metrics.RMSE)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\n# held-out overlay samples (first 20): measured vs predicted Pl")
	w = newTab()
	fmt.Fprintln(w, "M\tL\tB\tsemantics\tPl_measured\tPl_predicted")
	for i, p := range res.Pairs {
		if i == 20 {
			break
		}
		fmt.Fprintf(w, "%d\t%.2f\t%d\t%s\t%.4f\t%.4f\n",
			p.X.MessageSize, p.X.LossRate, p.X.BatchSize, semName(p.X.Semantics),
			p.MeasuredPl, p.PredictedPl)
	}
	return w.Flush()
}

// throughput regenerates the throughput figure family (an extension
// beyond the paper's reliability figures): delivered msg/s over the
// batch size on a single producer, and over the per-topic partition
// count on a 32-producer fleet. With a -csv directory the two series
// are additionally written as CSV artefacts (the files CI uploads).
func throughput(o figures.Options, csvDir string) error {
	batch, err := figures.ThroughputVsBatch(o)
	if err != nil {
		return err
	}
	fmt.Println("# Throughput vs batch size B (at-least-once, M=200B, D=10ms, L=2%, full load)")
	w := newTab()
	fmt.Fprintln(w, "B\tthroughput_msg_s\tphi\tPl")
	for _, p := range batch {
		fmt.Fprintf(w, "%d\t%.1f\t%.4f\t%.4f\n", p.BatchSize, p.Throughput, p.BandwidthUtilization, p.Pl)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	parts, err := figures.ThroughputVsPartitions(o)
	if err != nil {
		return err
	}
	fmt.Println("\n# Throughput vs partition count (fleet: 32 producers x 4 topics, keyed routing, B=2)")
	w = newTab()
	fmt.Fprintln(w, "partitions\tthroughput_msg_s\tPl")
	for _, p := range parts {
		fmt.Fprintf(w, "%d\t%.1f\t%.4f\n", p.Partitions, p.Throughput, p.Pl)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	write := func(name string, render func(*os.File) error) error {
		f, err := os.Create(filepath.Join(csvDir, name))
		if err != nil {
			return err
		}
		werr := render(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("write %s: %w", name, werr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(csvDir, name))
		return nil
	}
	if err := write("throughput_vs_batch.csv", func(f *os.File) error {
		return figures.WriteThroughputBatchCSV(f, batch)
	}); err != nil {
		return err
	}
	return write("throughput_vs_partitions.csv", func(f *os.File) error {
		return figures.WriteThroughputPartitionsCSV(f, parts)
	})
}

// traceRun executes one Fig. 8 configuration with the event tracer
// attached and prints the per-run timeline summary plus the first
// complete Case-5 duplicate chain — the mechanism behind Fig. 8 made
// visible: send → RTO-inflated response → spurious timeout → retry →
// duplicate append.
func traceRun(o figures.Options) error {
	tracer := obs.NewTracer(1 << 20)
	res, err := testbed.Run(testbed.Experiment{
		Features: figures.Fig8Vector(2, 0.15),
		Messages: o.Messages,
		Seed:     o.Seed + 6,
		Tracer:   tracer,
	})
	if err != nil {
		return err
	}
	events := tracer.Events()
	fmt.Println("# Per-run event trace: one Fig. 8 point (B=2, L=0.15, at-least-once)")
	fmt.Printf("# P_l=%.4f P_d=%.4f; %d events (%d buffered), retransmits=%d, RTO max=%v\n",
		res.Pl, res.Pd, tracer.Total(), len(events), res.Metrics.Retransmits, res.Metrics.RTOMax)
	byLayer := map[string]uint64{}
	byType := map[string]uint64{}
	for _, ev := range events {
		byLayer[ev.Layer]++
		byType[ev.Type]++
	}
	w := newTab()
	fmt.Fprintln(w, "layer\tevents")
	for _, layer := range []string{obs.LayerNetem, obs.LayerTransport, obs.LayerProducer, obs.LayerBroker, obs.LayerCluster} {
		fmt.Fprintf(w, "%s\t%d\n", layer, byLayer[layer])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	chains := obs.DuplicateChains(events)
	complete := 0
	for _, c := range chains {
		if obs.IsCompleteDuplicateChain(c) {
			complete++
		}
	}
	fmt.Printf("\n# duplicate chains: %d (%d complete); first complete chain:\n", len(chains), complete)
	w = newTab()
	fmt.Fprintln(w, "t\tlayer\tevent\tbatch\tvalue\taux")
	for _, c := range chains {
		if !obs.IsCompleteDuplicateChain(c) {
			continue
		}
		for _, ev := range c {
			fmt.Fprintf(w, "%v\t%s\t%s\t%d\t%d\t%d\n", ev.At, ev.Layer, ev.Type, ev.Key, ev.Value, ev.Aux)
		}
		break
	}
	return w.Flush()
}

// reportDynamicRun assembles and executes the Table-II-style dynamic
// run the report renders: the social-media stream over the default
// 10-minute trace, reconfigured by a rule-based threshold schedule
// (protective configuration while the forecast segment loses >= 5% of
// packets), with the timeline sampler and event tracer attached. It is
// shared with the acceptance test, which cross-checks the report totals
// against the run's counters.
// latency prints the end-to-end latency percentile family and, with a
// -csv directory, writes the percentile and CDF series as artefacts.
func latency(o figures.Options, csvDir string) error {
	points, err := figures.Latency(o)
	if err != nil {
		return err
	}
	fmt.Println("# End-to-end record latency spans (M=200B, D=10ms, B=2, one consumer; per semantics x loss)")
	w := newTab()
	fmt.Fprintln(w, "semantics\tloss\tspan\tcount\tp50\tp95\tp99\tmax")
	for _, p := range points {
		for _, s := range []struct {
			name string
			h    testbed.SpanHist
		}{
			{"enqueue→send", p.Send},
			{"enqueue→ack", p.Ack},
			{"enqueue→delivery", p.Delivery},
			{"commit", p.Commit},
		} {
			if s.h.Total() == 0 {
				continue
			}
			fmt.Fprintf(w, "%s\t%.2f\t%s\t%d\t%v\t%v\t%v\t%v\n",
				semName(p.Semantics), p.LossRate, s.name, s.h.Total(),
				s.h.Quantile(0.50), s.h.Quantile(0.95), s.h.Quantile(0.99), s.h.Max)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	write := func(name string, render func(*os.File) error) error {
		f, err := os.Create(filepath.Join(csvDir, name))
		if err != nil {
			return err
		}
		werr := render(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("write %s: %w", name, werr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(csvDir, name))
		return nil
	}
	if err := write("latency.csv", func(f *os.File) error { return figures.WriteLatencyCSV(f, points) }); err != nil {
		return err
	}
	return write("latency-cdf.csv", func(f *os.File) error { return figures.WriteLatencyCDFCSV(f, points) })
}

func reportDynamicRun(messages int, seed uint64) (testbed.Result, []obs.Event, error) {
	profile := workload.SocialMedia
	spec := netem.DefaultTraceSpec()
	trace, err := spec.Generate(seed + 11)
	if err != nil {
		return testbed.Result{}, nil, err
	}
	stream := dynconf.DefaultVector(profile)
	protective := stream
	protective.Semantics = features.SemanticsAtLeastOnce
	protective.BatchSize = 5
	protective.PollInterval = 30 * time.Millisecond
	protective.MessageTimeout = 3 * time.Second
	schedule, err := dynconf.ThresholdSchedule(trace, stream, protective, 30*time.Second, 0.05)
	if err != nil {
		return testbed.Result{}, nil, err
	}
	// Enough messages to keep the source alive across the whole trace
	// (capped by the caller's budget so -n still bounds the run).
	needed := int(testbed.DefaultCalibration().FullLoadRate(profile.MeanSize) * spec.Duration.Seconds() * 1.1)
	if messages > 0 && messages < needed {
		needed = messages
	}
	tracer := obs.NewTracer(1 << 20)
	timeline := obs.NewTimeline(0) // default 10 s sampling
	res, err := testbed.Run(testbed.Experiment{
		Features:   stream,
		Messages:   needed,
		Seed:       seed + 12,
		Trace:      trace,
		MaxSimTime: spec.Duration,
		Schedule:   dynconf.ToConfigChanges(schedule),
		Tracer:     tracer,
		Timeline:   timeline,
	})
	if err != nil {
		return testbed.Result{}, nil, err
	}
	return res, tracer.Events(), nil
}

// reportRun renders the self-contained run report for one dynamic run:
// per-phase reliability, timeline sparklines with config-switch
// markers, and the first complete duplicate chain.
func reportRun(o figures.Options) error {
	res, events, err := reportDynamicRun(o.Messages, o.Seed)
	if err != nil {
		return err
	}
	// Predicted γ for the stream's base configuration (performance model
	// with the clean-network reliability prior) next to the γ measured
	// from the run's own counters.
	gamma, err := kpi.CompareRun(dynconf.DefaultVector(workload.SocialMedia), res.Metrics,
		res.Duration, testbed.DefaultCalibration(), kpi.DefaultWeights())
	if err != nil {
		return err
	}
	rep, err := report.Build(res, events, report.Options{
		Title: "Run report: social-media stream, dynamic configuration over the default 10-minute trace",
		Gamma: &gamma,
	})
	if err != nil {
		return err
	}
	if err := rep.Verify(); err != nil {
		return err
	}
	return rep.Render(os.Stdout)
}

func sensitivity(o figures.Options) error {
	fmt.Println("# Sec. III-D sensitivity analysis: ±50% perturbation at a faulted operating point")
	base := features.Vector{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        50,
		LossRate:       0.18,
		Semantics:      features.SemanticsAtMostOnce,
		BatchSize:      2,
		PollInterval:   0,
		MessageTimeout: 700 * time.Millisecond,
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	results, err := sweep.SensitivityContext(ctx, base, sweep.SensitivityOptions{
		Messages: o.Messages / 4,
		Seed:     o.Seed,
		Workers:  o.Workers,
	})
	if err != nil {
		return err
	}
	w := newTab()
	fmt.Fprintln(w, "parameter\tPl_-50%\tPl_base\tPl_+50%\timpact\tselected")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.4f\t%.4f\t%v\n",
			r.Parameter, r.LowPl, r.BasePl, r.HighPl, r.Impact, r.Selected)
	}
	return w.Flush()
}
