package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing artefact accepted")
	}
	if err := run([]string{"nosuch"}); err == nil {
		t.Error("unknown artefact accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunFig9(t *testing.T) {
	if err := run([]string{"-q", "fig9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable1Small(t *testing.T) {
	if err := run([]string{"-q", "-n", "400", "table1"}); err != nil {
		t.Fatal(err)
	}
}
