package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"testing"
)

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{}); err == nil {
		t.Error("missing artefact accepted")
	}
	if err := run(ctx, []string{"nosuch"}); err == nil {
		t.Error("unknown artefact accepted")
	}
	if err := run(ctx, []string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunFig9(t *testing.T) {
	if err := run(context.Background(), []string{"-q", "fig9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable1Small(t *testing.T) {
	if err := run(context.Background(), []string{"-q", "-n", "400", "table1"}); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	ferr := fn()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

// TestRunFig7ParallelByteIdentical is the acceptance check for the
// execution layer: for a fixed seed, `repro fig7 -parallel=8` must print
// byte-identical output to `-parallel=1`.
func TestRunFig7ParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	outs := make([][]byte, 0, 2)
	for _, parallel := range []string{"1", "8"} {
		outs = append(outs, captureStdout(t, func() error {
			return run(context.Background(),
				[]string{"-q", "-n", "200", "-seed", "5", "-parallel", parallel, "fig7"})
		}))
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Errorf("fig7 output differs between -parallel=1 and -parallel=8:\n%s\nvs\n%s",
			outs[0], outs[1])
	}
}
