package main

import (
	"os"
	"path/filepath"
	"testing"

	"kafkarel/internal/features"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-grid", "nosuch"}); err == nil {
		t.Error("unknown grid accepted")
	}
}

func TestRunSmallSweepToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ds.csv")
	if err := run([]string{"-n", "200", "-grid", "normal", "-stride", "40", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := features.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Error("empty dataset written")
	}
}
