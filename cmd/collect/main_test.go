package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"kafkarel/internal/features"
)

func TestRunValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-grid", "nosuch"}); err == nil {
		t.Error("unknown grid accepted")
	}
}

func TestRunSmallSweepToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ds.csv")
	if err := run(context.Background(),
		[]string{"-n", "200", "-grid", "normal", "-stride", "40", "-o", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := features.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Error("empty dataset written")
	}
}

// TestRunParallelMatchesSequential asserts the CSV bytes are identical
// for workers=1 and workers=8 — the execution layer must not be able to
// perturb a published dataset.
func TestRunParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	var outs [][]byte
	for _, parallel := range []string{"1", "8"} {
		out := filepath.Join(dir, "ds"+parallel+".csv")
		err := run(context.Background(), []string{
			"-n", "150", "-grid", "abnormal", "-stride", "60", "-seed", "9",
			"-parallel", parallel, "-progress", "0", "-o", out,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, b)
	}
	if string(outs[0]) != string(outs[1]) {
		t.Errorf("CSV differs between -parallel=1 and -parallel=8:\n%s\nvs\n%s", outs[0], outs[1])
	}
}
