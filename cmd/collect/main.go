// Command collect runs the paper's Fig. 3 training-data collection
// sweep (normal and abnormal cases) on the simulated testbed and writes
// the labelled dataset as CSV. Experiments fan out over a worker pool
// and rows stream to the output in grid order as soon as each result's
// prefix has completed, so even very long sweeps need no dataset-sized
// buffer and a killed run leaves a usable CSV prefix behind.
//
// Usage:
//
//	collect [-n messages] [-seed n] [-grid normal|abnormal|both] [-stride k] \
//	        [-parallel workers] [-progress every] -o dataset.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"kafkarel/internal/exprun"
	"kafkarel/internal/features"
	"kafkarel/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "collect:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	messages := fs.Int("n", 10000, "messages per experiment")
	seed := fs.Uint64("seed", 1, "random seed")
	gridName := fs.String("grid", "both", "normal, abnormal or both (Fig. 3's two feature subspaces)")
	stride := fs.Int("stride", 1, "keep every k-th grid point (quick runs)")
	parallel := fs.Int("parallel", 0, "experiment workers (0 = GOMAXPROCS); results are identical for any value")
	progress := fs.Int("progress", 25, "print a progress line every N experiments (0 = quiet)")
	out := fs.String("o", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var grid []features.Vector
	switch *gridName {
	case "normal":
		grid = sweep.NormalGrid()
	case "abnormal":
		grid = sweep.AbnormalGrid()
	case "both":
		grid = append(sweep.NormalGrid(), sweep.AbnormalGrid()...)
	default:
		return fmt.Errorf("unknown grid %q", *gridName)
	}
	if *stride > 1 {
		kept := grid[:0]
		for i, v := range grid {
			if i%*stride == 0 {
				kept = append(kept, v)
			}
		}
		grid = kept
	}
	fmt.Fprintf(os.Stderr, "collecting %d experiments x %d messages\n", len(grid), *messages)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "collect: close:", cerr)
			}
		}()
		w = f
	}
	cw, err := features.NewCSVWriter(w)
	if err != nil {
		return err
	}
	opts := sweep.Options{
		Messages: *messages,
		Seed:     *seed,
		Workers:  *parallel,
	}
	if *progress > 0 {
		opts.Progress = exprun.NewReporter(os.Stderr, "collect", *progress).Progress
	}
	err = sweep.CollectStream(ctx, grid, opts, func(s features.Sample) error {
		if err := cw.Write(s); err != nil {
			return err
		}
		// Flush per row: an interrupted sweep keeps its completed prefix.
		return cw.Flush()
	})
	if err != nil {
		return err
	}
	return cw.Flush()
}
