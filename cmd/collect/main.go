// Command collect runs the paper's Fig. 3 training-data collection
// sweep (normal and abnormal cases) on the simulated testbed and writes
// the labelled dataset as CSV.
//
// Usage:
//
//	collect [-n messages] [-seed n] [-grid normal|abnormal|both] [-stride k] -o dataset.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"kafkarel/internal/features"
	"kafkarel/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "collect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	messages := fs.Int("n", 10000, "messages per experiment")
	seed := fs.Uint64("seed", 1, "random seed")
	gridName := fs.String("grid", "both", "normal, abnormal or both (Fig. 3's two feature subspaces)")
	stride := fs.Int("stride", 1, "keep every k-th grid point (quick runs)")
	out := fs.String("o", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var grid []features.Vector
	switch *gridName {
	case "normal":
		grid = sweep.NormalGrid()
	case "abnormal":
		grid = sweep.AbnormalGrid()
	case "both":
		grid = append(sweep.NormalGrid(), sweep.AbnormalGrid()...)
	default:
		return fmt.Errorf("unknown grid %q", *gridName)
	}
	if *stride > 1 {
		kept := grid[:0]
		for i, v := range grid {
			if i%*stride == 0 {
				kept = append(kept, v)
			}
		}
		grid = kept
	}
	fmt.Fprintf(os.Stderr, "collecting %d experiments x %d messages\n", len(grid), *messages)
	ds, err := sweep.Collect(grid, sweep.Options{
		Messages: *messages,
		Seed:     *seed,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "collect: close:", cerr)
			}
		}()
		w = f
	}
	return ds.WriteCSV(w)
}
