// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark, so CI can archive benchmark results
// as a machine-readable artefact (EXPERIMENTS.md documents the format).
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson > BENCH.json
//
// Each element carries the benchmark name (with the -N GOMAXPROCS
// suffix stripped), iteration count, ns/op, and — when -benchmem was on
// — B/op and allocs/op. Any additional custom metrics (from
// b.ReportMetric) land in the "custom" map keyed by unit. Lines that
// are not benchmark results are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Custom      map[string]float64 `json:"custom,omitempty"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseLine parses one `Benchmark...` output line; ok is false for
// non-benchmark lines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
		Iterations: iters,
	}
	// The remainder is value/unit pairs: `1234 ns/op 56 B/op ...`.
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Custom == nil {
				r.Custom = make(map[string]float64)
			}
			r.Custom[unit] = v
		}
	}
	return r, seen
}

func run() error {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (run `go test -bench` with output piped here)")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
