package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFig7ObservabilityEnabled-8   \t      12\t  98765432 ns/op\t 1234567 B/op\t    8910 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if r.Name != "BenchmarkFig7ObservabilityEnabled" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", r.Name)
	}
	if r.Iterations != 12 || r.NsPerOp != 98765432 {
		t.Errorf("iterations/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 1234567 {
		t.Errorf("B/op = %v, want 1234567", r.BytesPerOp)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 8910 {
		t.Errorf("allocs/op = %v, want 8910", r.AllocsPerOp)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	r, ok := parseLine("BenchmarkTimeline-4 \t 3\t 1000 ns/op\t 42.5 rows\t 0.19 Pl")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Custom["rows"] != 42.5 || r.Custom["Pl"] != 0.19 {
		t.Errorf("custom = %v", r.Custom)
	}
}

func TestParseLineWithoutBenchmem(t *testing.T) {
	r, ok := parseLine("BenchmarkX \t 100\t 55.5 ns/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Error("memory fields set without -benchmem")
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: kafkarel",
		"PASS",
		"ok  \tkafkarel\t12.3s",
		"BenchmarkBroken notanumber 5 ns/op",
		"cpu: Apple M2",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("noise line %q accepted", line)
		}
	}
}
