// Command chaos runs randomised fault-injection campaigns against the
// simulated Kafka stack and verifies delivery invariants on every
// trial. It emits a JSON scorecard (one row per trial: seeds, faults,
// reliability metrics, classified anomalies, violations) and exits
// non-zero if any trial violated an invariant.
//
// Usage:
//
//	chaos -trials 100 -seed 42 -out scorecard.json
//	chaos -mode at-least-once -trials 50
//	chaos -trials 60 -e2e                # consumer group + end-to-end checker per trial
//	chaos -trials 60 -txn                # transactional pipeline + exactly-once checker per trial
//	chaos -trials 60 -coop               # cooperative-rebalance churn campaign (eager control per trial)
//	chaos -txn -isolation read_uncommitted   # aborted residue classified, not flagged
//	chaos -mode exactly-once -plan-seed 123 -workload-seed 456   # replay one trial
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kafkarel/internal/chaos/campaign"
)

func main() {
	var (
		modes        = flag.String("mode", "exactly-once,at-least-once", "comma-separated campaign modes (exactly-once, at-least-once, txn, coop)")
		trials       = flag.Int("trials", 50, "trials per campaign")
		seed         = flag.Uint64("seed", 1, "campaign seed")
		messages     = flag.Int("messages", 300, "messages per trial")
		maxFaults    = flag.Int("max-faults", 5, "max faults per generated plan")
		horizon      = flag.Duration("horizon", 2*time.Second, "fault-injection window (sim time)")
		flushEvery   = flag.Duration("flush-interval", 50*time.Millisecond, "broker fsync cadence")
		e2e          = flag.Bool("e2e", false, "run a consumer group through each trial and verify end-to-end delivery (group members crash too)")
		txn          = flag.Bool("txn", false, "run the transactional pipeline campaign only (shorthand for -mode txn)")
		coop         = flag.Bool("coop", false, "run the cooperative-rebalance churn campaign only (shorthand for -mode coop)")
		isolation    = flag.String("isolation", "", "txn-mode consumer isolation: read_committed (default) or read_uncommitted")
		members      = flag.Int("consumers", 2, "consumer-group size per trial under -e2e (default 2) or per group under -coop (default 6)")
		groups       = flag.Int("groups", 0, "coop-mode consumer-group fan-out (default 2)")
		workers      = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
		out          = flag.String("out", "", "write scorecard JSON to this file (default stdout)")
		quiet        = flag.Bool("q", false, "suppress progress on stderr")
		planSeed     = flag.Uint64("plan-seed", 0, "replay a single trial: its plan seed")
		workloadSeed = flag.Uint64("workload-seed", 0, "replay a single trial: its workload seed")
	)
	flag.Parse()

	cfg := campaign.Config{
		Trials:        *trials,
		Seed:          *seed,
		Messages:      *messages,
		MaxFaults:     *maxFaults,
		Horizon:       *horizon,
		FlushInterval: *flushEvery,
		E2E:           *e2e,
		Isolation:     *isolation,
		Workers:       *workers,
	}
	if *e2e {
		cfg.ConsumerMembers = *members
	}
	if *txn {
		*modes = campaign.ModeTxn
	}
	if *coop {
		*modes = campaign.ModeCoop
		cfg.Groups = *groups
		if flagSet("consumers") {
			cfg.ConsumerMembers = *members
		}
	}

	if *planSeed != 0 || *workloadSeed != 0 {
		if err := replay(cfg, *modes, *planSeed, *workloadSeed); err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(2)
		}
		return
	}

	var cards []campaign.Scorecard
	violations := 0
	for _, mode := range strings.Split(*modes, ",") {
		cfg.Mode = strings.TrimSpace(mode)
		if !*quiet {
			cfg.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials", cfg.Mode, done, total)
			}
		}
		sc, err := campaign.Run(context.Background(), cfg)
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(2)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s: %d trials, %d violations, %d flagged (%d with acked loss, %d with offset regressions)\n",
				sc.Mode, sc.Trials, sc.Failed, sc.Flagged, sc.AckedLost, sc.OffsetRegressed)
			if sc.Mode == campaign.ModeCoop {
				fmt.Fprintf(os.Stderr, "coop vs eager: redelivered %d vs %d, paused %v vs %v\n",
					sc.CoopRedelivered, sc.EagerRedelivered,
					time.Duration(sc.CoopPausedNs), time.Duration(sc.EagerPausedNs))
			}
		}
		violations += sc.Failed
		cards = append(cards, sc)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Campaigns  []campaign.Scorecard `json:"campaigns"`
		Violations int                  `json:"violations"`
	}{cards, violations}); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(2)
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// flagSet reports whether a flag was explicitly passed on the command
// line (as opposed to resting at its default).
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// replay re-runs one trial from its scorecard seeds and prints the row.
func replay(cfg campaign.Config, modes string, planSeed, workloadSeed uint64) error {
	cfg.Mode = strings.TrimSpace(strings.Split(modes, ",")[0])
	row, err := campaign.RunTrial(cfg, planSeed, workloadSeed)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(row); err != nil {
		return err
	}
	if !row.Pass {
		os.Exit(1)
	}
	return nil
}
