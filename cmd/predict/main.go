// Command predict loads a trained model and predicts the reliability
// metrics P̂_l and P̂_d — plus the weighted KPI γ — for one feature
// vector given on the command line.
//
// Usage:
//
//	predict -model model.json -size 200 -loss 0.19 -delay 100 \
//	        -semantics at-least-once -batch 2 -poll 0ms -timeout 1500ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kafkarel/internal/core"
	"kafkarel/internal/features"
	"kafkarel/internal/kpi"
	"kafkarel/internal/perfmodel"
	"kafkarel/internal/testbed"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	model := fs.String("model", "", "trained model JSON (from cmd/train)")
	size := fs.Int("size", 200, "message size M in bytes")
	timeliness := fs.Duration("timeliness", 5*time.Second, "message validity S")
	delay := fs.Float64("delay", 0, "network delay D in ms")
	loss := fs.Float64("loss", 0, "packet loss rate L in [0,1]")
	semantics := fs.String("semantics", "at-least-once", "at-most-once, at-least-once or exactly-once")
	batch := fs.Int("batch", 1, "batch size B")
	poll := fs.Duration("poll", 0, "polling interval δ")
	timeout := fs.Duration("timeout", 1500*time.Millisecond, "message timeout T_o")
	w1 := fs.Float64("w1", 0.3, "KPI weight ω1 (bandwidth utilisation)")
	w2 := fs.Float64("w2", 0.3, "KPI weight ω2 (service rate)")
	w3 := fs.Float64("w3", 0.3, "KPI weight ω3 (1-Pl)")
	w4 := fs.Float64("w4", 0.1, "KPI weight ω4 (1-Pd)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("missing -model")
	}
	sem := map[string]int{
		"at-most-once":  features.SemanticsAtMostOnce,
		"at-least-once": features.SemanticsAtLeastOnce,
		"exactly-once":  features.SemanticsExactlyOnce,
	}[*semantics]
	if sem == 0 {
		return fmt.Errorf("unknown semantics %q", *semantics)
	}
	v := features.Vector{
		MessageSize:    *size,
		Timeliness:     *timeliness,
		DelayMs:        *delay,
		LossRate:       *loss,
		Semantics:      sem,
		BatchSize:      *batch,
		PollInterval:   *poll,
		MessageTimeout: *timeout,
	}

	f, err := os.Open(*model)
	if err != nil {
		return err
	}
	pred, err := core.Load(f)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}

	rel, err := pred.Predict(v)
	if err != nil {
		return err
	}
	perf, err := perfmodel.New(testbed.Calibration{})
	if err != nil {
		return err
	}
	pp, err := perf.Predict(v)
	if err != nil {
		return err
	}
	gamma, err := kpi.Gamma(pp.Phi, pp.Mu, rel.Pl, rel.Pd, kpi.Weights{*w1, *w2, *w3, *w4})
	if err != nil {
		return err
	}
	fmt.Printf("P_l (message loss):        %.4f\n", rel.Pl)
	fmt.Printf("P_d (message duplication): %.4f\n", rel.Pd)
	fmt.Printf("phi (bandwidth util.):     %.4f\n", pp.Phi)
	fmt.Printf("mu  (norm. service rate):  %.4f\n", pp.Mu)
	fmt.Printf("gamma (weighted KPI):      %.4f\n", gamma)
	return nil
}
