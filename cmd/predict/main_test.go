package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"kafkarel/internal/core"
	"kafkarel/internal/features"
)

func writeModel(t *testing.T) string {
	t.Helper()
	var ds features.Dataset
	for _, l := range []float64{0, 0.1, 0.2, 0.3} {
		for _, b := range []int{1, 2, 5} {
			ds = append(ds, features.Sample{
				X: features.Vector{
					MessageSize: 200, Timeliness: time.Second,
					LossRate: l, Semantics: features.SemanticsAtLeastOnce,
					BatchSize: b, MessageTimeout: time.Second,
				},
				Pl: l / float64(b),
			})
		}
	}
	pred, _, err := core.Train(ds, core.TrainConfig{Seed: 1, EpochOverride: 100})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pred.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -model accepted")
	}
	if err := run([]string{"-model", writeModel(t), "-semantics", "bogus"}); err == nil {
		t.Error("unknown semantics accepted")
	}
	if err := run([]string{"-model", "/does/not/exist"}); err == nil {
		t.Error("missing model accepted")
	}
}

func TestRunPredicts(t *testing.T) {
	model := writeModel(t)
	if err := run([]string{"-model", model, "-loss", "0.2", "-batch", "2"}); err != nil {
		t.Fatal(err)
	}
	// Unmodelled semantics surfaces an error.
	if err := run([]string{"-model", model, "-semantics", "at-most-once"}); err == nil {
		t.Error("unmodelled semantics accepted")
	}
}
