// Command testbed runs a testbed experiment (one Docker-testbed run in
// the paper's methodology) and prints every measured metric. With
// -producers > 1 the independent per-producer simulations fan out over
// -parallel workers, and with -fleet N it runs a fleet-scale scenario:
// N producers spread over -topics topics of -partitions partitions
// each, keyed routing, consumer groups draining every topic. In every
// mode the result is identical for any worker count. -metrics prints
// the observability snapshot; -timeline writes entity-tagged timelines
// as one merged CSV; -trace writes the structured event stream as JSONL
// (tracing is the one single-producer-only artefact — it follows one
// total event order).
//
// Usage:
//
//	testbed [-n messages] [-seed n] -size 200 -loss 0.19 -delay 100 \
//	        -semantics at-most-once -batch 1 -poll 0ms -timeout 1500ms \
//	        [-producers n] [-parallel workers] [-metrics] [-trace out.jsonl] \
//	        [-timeline out.csv [-timeline-interval 10s]] \
//	        [-fleet n -topics t -partitions p -consumers c [-consumer-faults] -users-per-sec r]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"kafkarel/internal/features"
	"kafkarel/internal/kpi"
	"kafkarel/internal/obs"
	"kafkarel/internal/testbed"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "testbed:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("testbed", flag.ContinueOnError)
	messages := fs.Int("n", 100000, "source messages (the paper uses 10^6)")
	seed := fs.Uint64("seed", 1, "random seed")
	size := fs.Int("size", 200, "message size M in bytes")
	timeliness := fs.Duration("timeliness", 5*time.Second, "message validity S")
	delay := fs.Float64("delay", 0, "network delay D in ms")
	loss := fs.Float64("loss", 0, "packet loss rate L in [0,1]")
	semantics := fs.String("semantics", "at-least-once", "at-most-once, at-least-once or exactly-once")
	batch := fs.Int("batch", 1, "batch size B")
	poll := fs.Duration("poll", 0, "polling interval δ (0 = full load)")
	timeout := fs.Duration("timeout", 1500*time.Millisecond, "message timeout T_o")
	producers := fs.Int("producers", 1, "scale out across N producers (Sec. IV-C)")
	parallel := fs.Int("parallel", 0, "simulation workers for scaled and fleet runs (0 = GOMAXPROCS)")
	metrics := fs.Bool("metrics", false, "print the per-run observability snapshot")
	tracePath := fs.String("trace", "", "write the structured event trace as JSONL to this file (requires -producers 1)")
	timelinePath := fs.String("timeline", "", "write the sim-time timelines as one merged, entity-tagged CSV to this file")
	timelineIvl := fs.Duration("timeline-interval", 0, "timeline sampling interval (0 = default 10s)")
	fleet := fs.Int("fleet", 0, "fleet mode: run N producers over -topics topics with keyed routing and consumer groups")
	topics := fs.Int("topics", 8, "fleet topic count (each topic is one independent shard)")
	partitions := fs.Int("partitions", 32, "fleet per-topic partition count")
	consumers := fs.Int("consumers", 1, "fleet consumer-group members per topic (per group with -groups)")
	groupsN := fs.Int("groups", 1, "fleet consumer-group fan-out per topic (independent groups sharing each shard's coordinator and offsets log)")
	cooperative := fs.Bool("cooperative", false, "fleet mode: run every consumer group under the cooperative incremental rebalance protocol (KIP-429) instead of eager")
	consumerFaults := fs.Bool("consumer-faults", false, "fleet mode: crash and restart group members mid-stream in every shard (needs -consumers >= 2)")
	usersPerSec := fs.Float64("users-per-sec", 0, "fleet aggregate offered load in msg/s (0 = full speed)")
	lagTimeline := fs.String("lag-timeline", "", "fleet mode: write the per-partition consumer-lag timeline as CSV to this file (requires -timeline-interval sampling; implied interval 10s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sem := map[string]int{
		"at-most-once":  features.SemanticsAtMostOnce,
		"at-least-once": features.SemanticsAtLeastOnce,
		"exactly-once":  features.SemanticsExactlyOnce,
	}[*semantics]
	if sem == 0 {
		return fmt.Errorf("unknown semantics %q", *semantics)
	}
	v := features.Vector{
		MessageSize:    *size,
		Timeliness:     *timeliness,
		DelayMs:        *delay,
		LossRate:       *loss,
		Semantics:      sem,
		BatchSize:      *batch,
		PollInterval:   *poll,
		MessageTimeout: *timeout,
	}
	if *fleet > 0 {
		return runFleet(ctx, v, fleetFlags{
			messages:       *messages,
			seed:           *seed,
			producers:      *fleet,
			topics:         *topics,
			partitions:     *partitions,
			consumers:      *consumers,
			groups:         *groupsN,
			cooperative:    *cooperative,
			consumerFaults: *consumerFaults,
			usersPerSec:    *usersPerSec,
			parallel:       *parallel,
			timeline:       *timelinePath,
			timelineIvl:    *timelineIvl,
			lagTimeline:    *lagTimeline,
			trace:          *tracePath,
		})
	}
	e := testbed.Experiment{
		Features:   v,
		Messages:   *messages,
		Seed:       *seed,
		MaxSimTime: 4 * time.Hour,
	}
	var traceFile *os.File
	if *tracePath != "" {
		if *producers > 1 {
			return fmt.Errorf("-trace requires -producers 1 (a trace follows one virtual clock)")
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("create trace file: %w", err)
		}
		traceFile = f
		defer traceFile.Close()
		e.Tracer = obs.NewTracer(obs.DefaultTraceCapacity)
		e.Tracer.SetSink(traceFile)
	}
	if *timelinePath != "" {
		// For a scaled run this acts as an interval template: each
		// producer's simulation samples its own entity-tagged timeline
		// and the CSV below merges them on the virtual-time axis.
		e.Timeline = obs.NewTimeline(*timelineIvl)
	}
	res, err := testbed.RunScaledContext(ctx, e, *producers, *parallel)
	if err != nil {
		return err
	}
	if e.Timeline != nil {
		if err := writeMergedTimeline(*timelinePath, res.Timelines); err != nil {
			return err
		}
	}
	if e.Tracer != nil {
		if err := e.Tracer.Err(); err != nil {
			return fmt.Errorf("trace sink: %w", err)
		}
		fmt.Printf("trace: %d events written to %s\n", e.Tracer.Total(), *tracePath)
	}
	lat := res.Latency
	fmt.Printf("messages acquired:   %d (completed: %v)\n", res.Acquired, res.Completed)
	fmt.Printf("P_l  (loss):         %.4f  (N_l = %d)\n", res.Pl, res.Report.NLost)
	fmt.Printf("P_d  (duplication):  %.4f  (N_d = %d, extra copies %d)\n", res.Pd, res.Report.NDuplicated, res.Report.ExtraCopies)
	fmt.Printf("throughput:          %.1f msg/s over %v simulated\n", res.Throughput, res.Duration.Round(time.Millisecond))
	fmt.Printf("bandwidth util. phi: %.4f\n", res.BandwidthUtilization)
	fmt.Printf("latency T_p (ms):    mean=%.1f sd=%.1f min=%.1f max=%.1f\n",
		lat.Mean(), lat.StdDev(), lat.Min(), lat.Max())
	fmt.Printf("stale (T_p > S):     %.4f\n", res.StaleRate)
	fmt.Println("message state cases (producer view, Table I):")
	for _, row := range res.Producer.Cases() {
		fmt.Printf("  %-6s %8d (%.4f)\n", row.Case, row.Count, row.Share)
	}
	fmt.Printf("  case5  %8d (%.4f)  [consumer-observed duplicates]\n",
		res.Report.NDuplicated, res.Pd)
	if *metrics {
		fmt.Println("run metrics:")
		fmt.Print(indent(string(res.Metrics.Encode())))
	}
	return nil
}

func indent(s string) string {
	s = strings.TrimRight(s, "\n")
	return "  " + strings.ReplaceAll(s, "\n", "\n  ") + "\n"
}

// writeMergedTimeline renders entity-tagged timelines as one CSV file
// ordered on the shared virtual-time axis.
func writeMergedTimeline(path string, timelines []*obs.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create timeline file: %w", err)
	}
	werr := obs.WriteMergedCSV(f, timelines)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("write timeline: %w", werr)
	}
	rows, anns := 0, 0
	for _, tl := range timelines {
		rows += len(tl.Rows())
		anns += len(tl.Annotations())
	}
	fmt.Printf("timeline: %d timelines, %d samples, %d annotations written to %s\n",
		len(timelines), rows, anns, path)
	return nil
}

// writeLagTimeline renders the consumer-lag series of every sampled
// timeline (the topic entities carry the group probes) as one CSV.
func writeLagTimeline(path string, timelines []*obs.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create lag timeline file: %w", err)
	}
	werr := obs.WriteLagCSV(f, timelines)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("write lag timeline: %w", werr)
	}
	fmt.Printf("lag timeline written to %s\n", path)
	return nil
}

// fleetFlags carries the fleet-mode CLI parameters.
type fleetFlags struct {
	messages       int
	seed           uint64
	producers      int
	topics         int
	partitions     int
	consumers      int
	groups         int
	cooperative    bool
	consumerFaults bool
	usersPerSec    float64
	parallel       int
	timeline       string
	timelineIvl    time.Duration
	lagTimeline    string
	trace          string
}

// runFleet executes the fleet-scale scenario and prints its scorecard:
// one line per topic plus fleet totals, byte-identical for any
// -parallel value.
func runFleet(ctx context.Context, v features.Vector, ff fleetFlags) error {
	if ff.trace != "" {
		return fmt.Errorf("-trace requires a single producer (a trace follows one total event order); fleet runs use -timeline")
	}
	f := testbed.Fleet{
		Features:          v,
		Producers:         ff.producers,
		Topics:            ff.topics,
		Partitions:        ff.partitions,
		Messages:          ff.messages,
		Seed:              ff.seed,
		UsersPerSec:       ff.usersPerSec,
		ConsumersPerTopic: ff.consumers,
		Groups:            ff.groups,
		Cooperative:       ff.cooperative,
		ConsumerFaults:    ff.consumerFaults,
		MaxSimTime:        4 * time.Hour,
	}
	if ff.timeline != "" || ff.lagTimeline != "" {
		ivl := ff.timelineIvl
		if ivl <= 0 {
			ivl = 10 * time.Second
		}
		f.TimelineInterval = ivl
	}
	res, err := testbed.RunFleetContext(ctx, f, ff.parallel)
	if err != nil {
		return err
	}
	if ff.timeline != "" {
		if err := writeMergedTimeline(ff.timeline, res.Timelines); err != nil {
			return err
		}
	}
	if ff.lagTimeline != "" {
		if err := writeLagTimeline(ff.lagTimeline, res.Timelines); err != nil {
			return err
		}
	}
	// Predicted γ (performance model, clean-network reliability prior)
	// next to the γ measured from the merged metrics snapshot.
	gamma, err := kpi.CompareRun(v, res.Metrics, res.Duration,
		testbed.DefaultCalibration(), kpi.DefaultWeights())
	if err != nil {
		return err
	}
	res.Gamma = &gamma
	// The scorecard is the canonical byte surface; its tail already
	// carries the merged metrics snapshot, so -metrics is implied here.
	os.Stdout.Write(res.Scorecard())
	lat := res.Latency
	fmt.Printf("latency T_p (ms): mean=%.1f sd=%.1f min=%.1f max=%.1f\n",
		lat.Mean(), lat.StdDev(), lat.Min(), lat.Max())
	return nil
}
