package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-semantics", "bogus"}); err == nil {
		t.Error("unknown semantics accepted")
	}
	if err := run([]string{"-n", "0"}); err == nil {
		t.Error("zero messages accepted")
	}
}

func TestRunSmallExperiment(t *testing.T) {
	if err := run([]string{"-n", "300", "-loss", "0.1", "-poll", "30ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScaled(t *testing.T) {
	if err := run([]string{"-n", "300", "-producers", "2"}); err != nil {
		t.Fatal(err)
	}
}
