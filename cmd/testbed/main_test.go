package main

import (
	"context"
	"testing"
)

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-semantics", "bogus"}); err == nil {
		t.Error("unknown semantics accepted")
	}
	if err := run(ctx, []string{"-n", "0"}); err == nil {
		t.Error("zero messages accepted")
	}
}

func TestRunSmallExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "300", "-loss", "0.1", "-poll", "30ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScaled(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "300", "-producers", "2", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
}
