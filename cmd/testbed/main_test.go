package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"kafkarel/internal/obs"
)

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-semantics", "bogus"}); err == nil {
		t.Error("unknown semantics accepted")
	}
	if err := run(ctx, []string{"-n", "0"}); err == nil {
		t.Error("zero messages accepted")
	}
}

func TestRunSmallExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "300", "-loss", "0.1", "-poll", "30ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScaled(t *testing.T) {
	if err := run(context.Background(), []string{"-n", "300", "-producers", "2", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRejectsScaledRuns(t *testing.T) {
	err := run(context.Background(), []string{
		"-n", "100", "-producers", "2",
		"-trace", filepath.Join(t.TempDir(), "t.jsonl"),
	})
	if err == nil {
		t.Fatal("-trace with -producers 2 accepted")
	}
}

// Acceptance: a Fig. 8 at-least-once configuration traced with -trace
// must yield a JSONL event stream containing at least one complete
// duplicate chain — batch send, RTO-inflated request timeout, retry and
// duplicate append on the same broker.
func TestTraceCapturesDuplicateChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	err := run(context.Background(), []string{
		"-n", "2000", "-size", "200", "-delay", "100", "-loss", "0.15",
		"-batch", "2", "-timeout", "3s", "-semantics", "at-least-once",
		"-seed", "7", "-trace", path, "-metrics",
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace file is empty")
	}
	complete := 0
	for _, chain := range obs.DuplicateChains(events) {
		if obs.IsCompleteDuplicateChain(chain) {
			complete++
		}
	}
	if complete == 0 {
		t.Fatalf("no complete duplicate chain in %d events", len(events))
	}
	t.Logf("%d events, %d complete duplicate chains", len(events), complete)
}
