// Command profile runs a fixed-seed Fig. 7 reproduction under the Go
// profiler and writes cpu.pprof and heap.pprof. It exists so hot-path
// work (issue 5's allocation overhaul) is measured against a stable,
// deterministic workload instead of ad-hoc one-off runs:
//
//	make profile
//	go tool pprof -top cpu.pprof
//	go tool pprof -top -sample_index=alloc_space heap.pprof
//
// The workload is the same 88-experiment Fig. 7 grid the scaling
// benchmarks time (Messages=600, Seed=1), run sequentially so profiles
// attribute cost to the simulation stack rather than pool scheduling.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"kafkarel"
)

func run() error {
	cpuOut := flag.String("cpu", "cpu.pprof", "CPU profile output path")
	heapOut := flag.String("heap", "heap.pprof", "heap profile output path")
	messages := flag.Int("n", 600, "messages per experiment")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", 1, "worker-pool size")
	rounds := flag.Int("rounds", 10, "times to repeat the Fig. 7 grid")
	flag.Parse()

	f, err := os.Create(*cpuOut)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}

	start := time.Now()
	var points int
	for r := 0; r < *rounds; r++ {
		ps, err := kafkarel.Fig7(kafkarel.FigureOptions{
			Messages: *messages, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			pprof.StopCPUProfile()
			return err
		}
		points = len(ps)
	}
	elapsed := time.Since(start)
	pprof.StopCPUProfile()

	// Heap profile after the run: with the hot paths pooled this shows
	// retained working-set, and alloc_space shows cumulative churn.
	runtime.GC()
	h, err := os.Create(*heapOut)
	if err != nil {
		return err
	}
	defer h.Close()
	if err := pprof.WriteHeapProfile(h); err != nil {
		return err
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("fig7 x%d: %d points, %v (%v/round), %d cumulative allocs, %s\n",
		*rounds, points, elapsed.Round(time.Millisecond),
		(elapsed / time.Duration(*rounds)).Round(time.Millisecond),
		ms.Mallocs, byteCount(ms.TotalAlloc))
	fmt.Printf("wrote %s and %s\n", *cpuOut, *heapOut)
	return nil
}

func byteCount(b uint64) string {
	const mb = 1 << 20
	return fmt.Sprintf("%.1f MiB", float64(b)/mb)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		os.Exit(1)
	}
}
