// Gametraffic reproduces the Table II "game traffic messages" scenario:
// tiny messages (<100 B, mouse/keyboard signals) with hard real-time
// requirements — losing OR delaying them ruins the player's experience.
// The paper's remedy (Sec. IV-C) is scaling: slow each producer's poll
// interval and add producers so the aggregate rate is unchanged while
// every producer's queue stays bounded. The example measures loss AND
// staleness (T_p > S) across fleet sizes.
//
// Run with: go run ./examples/gametraffic
package main

import (
	"fmt"
	"log"
	"time"

	"kafkarel"
)

func main() {
	log.SetFlags(0)
	profile := kafkarel.GameTraffic
	fmt.Printf("stream: %s (M≈%dB, S=%v, ω=%v)\n\n",
		profile.Name, profile.MeanSize, profile.Timeliness, profile.Weights)

	// A single fully loaded producer: tiny messages arrive far faster
	// than one producer can push them.
	e := kafkarel.Experiment{
		Features: kafkarel.Features{
			MessageSize:    profile.MeanSize,
			Timeliness:     profile.Timeliness,
			DelayMs:        15,
			Semantics:      kafkarel.AtMostOnce, // real-time: no time for retries
			BatchSize:      1,
			PollInterval:   0,
			MessageTimeout: profile.Timeliness, // stale game input is useless
		},
		Messages: 12000,
		Seed:     21,
	}

	fmt.Println("fleet   P_l      stale    mean T_p")
	var single kafkarel.Result
	for _, producers := range []int{1, 2, 4, 8} {
		res, err := kafkarel.RunScaledExperiment(e, producers)
		if err != nil {
			log.Fatal(err)
		}
		if producers == 1 {
			single = res
		}
		lat := res.Latency
		fmt.Printf("%4d   %6.3f   %6.3f   %7.1f ms\n",
			producers, res.Pl, res.StaleRate, lat.Mean())
	}

	fmt.Println("\nthe scaling rule N_p/δ = N_p'/(δ+Δδ) keeps the aggregate arrival")
	fmt.Printf("rate fixed; a single producer lost %.1f%% of the game events while\n",
		100*single.Pl)
	fmt.Println("the scaled fleet keeps each producer's accumulator short enough")
	fmt.Println("that events go out before their validity window S expires.")

	// Exactly-once as the belt-and-braces option: the idempotent producer
	// retries aggressively without ever duplicating an input event.
	v := e.Features
	v.Semantics = kafkarel.ExactlyOnce
	v.LossRate = 0.12
	v.PollInterval = 25 * time.Millisecond
	v.MessageTimeout = 2 * profile.Timeliness
	res, err := kafkarel.RunExperiment(kafkarel.Experiment{Features: v, Messages: 6000, Seed: 22})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexactly-once under 12%% burst loss: P_l=%.3f P_d=%.4f — duplicates\n", res.Pl, res.Pd)
	fmt.Println("are suppressed by broker-side sequence de-duplication (the paper's")
	fmt.Println("Sec. II note that exactly-once needs extra resources: here it costs")
	fmt.Println("acks=all round trips to the full replica set).")
}
