// Socialmedia reproduces the Table II "messages from social media"
// scenario: text messages that must be delivered quickly with the lowest
// loss rate (weights ω = 0.4, 0.3, 0.2, 0.1), running over the paper's
// Fig. 9 network (Pareto-distributed delay, Gilbert-Elliot burst loss).
// It compares the static default Kafka configuration with the offline
// dynamic-configuration schedule produced by the prediction model.
//
// Run with: go run ./examples/socialmedia
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"kafkarel"
)

func main() {
	log.SetFlags(0)
	profile := kafkarel.SocialMedia
	fmt.Printf("stream: %s (M≈%dB, S=%v, ω=%v)\n",
		profile.Name, profile.MeanSize, profile.Timeliness, profile.Weights)

	// A shortened Fig. 9 network so the example finishes quickly.
	spec := kafkarel.TraceSpec{
		Duration:     4 * time.Minute,
		Interval:     10 * time.Second,
		DelayScaleMs: 20,
		DelayShape:   1.5,
		GEGoodToBad:  0.22,
		GEBadToGood:  0.3,
		GoodLoss:     0.005,
		BadLoss:      0.17,
	}

	outcomes, err := kafkarel.EvaluateDynamicConfiguration(
		[]kafkarel.StreamProfile{profile},
		kafkarel.DynConfOptions{
			Messages:      8000,
			Seed:          7,
			TraceSpec:     spec,
			Interval:      30 * time.Second,
			TrainMessages: 800,
			Progress:      func(s string) { fmt.Fprintln(os.Stderr, "  ", s) },
		})
	if err != nil {
		log.Fatal(err)
	}
	o := outcomes[0]
	fmt.Println("\n            R_l       R_d")
	fmt.Printf("default    %6.2f%%  %7.3f%%\n", 100*o.DefaultRl, 100*o.DefaultRd)
	fmt.Printf("dynamic    %6.2f%%  %7.3f%%   (%d reconfigurations, target γ=%.2f)\n",
		100*o.DynamicRl, 100*o.DynamicRd, o.Reconfigurations, o.Target)

	if o.DynamicRl < o.DefaultRl {
		fmt.Printf("\ndynamic configuration cut the loss rate by %.1f%% relative — the\n",
			100*(1-o.DynamicRl/o.DefaultRl))
		fmt.Println("paper's Table II observes the same effect (55.76% → 17.58%),")
		fmt.Println("sometimes at the price of a slightly higher duplicate rate.")
	} else {
		fmt.Println("\ndynamic configuration did not beat the default on this trace;")
		fmt.Println("re-run with another -seed (bursty traces vary).")
	}
}
