// Weblogs reproduces the Table II "web server access records" scenario:
// timeliness is lax, duplicates are tolerable (idempotent processing),
// but the stream must be complete — KPI weights ω = 0.1, 0.1, 0.7, 0.1
// put almost everything on 1−P_l. The example shows the paper's
// batching lesson (Sec. IV-D): under moderate packet loss, accumulating
// even two messages per request pulls the producer back from the
// TCP-collapse regime.
//
// Run with: go run ./examples/weblogs
package main

import (
	"fmt"
	"log"
	"time"

	"kafkarel"
)

func main() {
	log.SetFlags(0)
	profile := kafkarel.WebLogs
	fmt.Printf("stream: %s (M≈%dB, S=%v, ω=%v)\n\n",
		profile.Name, profile.MeanSize, profile.Timeliness, profile.Weights)

	base := kafkarel.Features{
		MessageSize:    profile.MeanSize,
		Timeliness:     profile.Timeliness,
		DelayMs:        20,
		Semantics:      kafkarel.AtLeastOnce,
		BatchSize:      1,
		PollInterval:   0, // records arrive as fast as the host reads them
		MessageTimeout: 1500 * time.Millisecond,
	}

	fmt.Println("P_l by batch size across packet-loss rates (at-least-once):")
	fmt.Println("  L\\B      1       2       5      10")
	for _, loss := range []float64{0.05, 0.10, 0.15, 0.20} {
		fmt.Printf("  %3.0f%%  ", 100*loss)
		for _, b := range []int{1, 2, 5, 10} {
			v := base
			v.LossRate = loss
			v.BatchSize = b
			res, err := kafkarel.RunExperiment(kafkarel.Experiment{
				Features: v,
				Messages: 4000,
				Seed:     11,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%6.3f  ", res.Pl)
		}
		fmt.Println()
	}

	// Train a small model over that slice and let the KPI (completeness-
	// heavy weights) choose the configuration at L = 15%.
	fmt.Println("\ntraining a predictor over the batching slice...")
	var grid []kafkarel.Features
	for _, loss := range []float64{0, 0.05, 0.10, 0.15, 0.20} {
		for _, b := range []int{1, 2, 5, 10} {
			v := base
			v.LossRate = loss
			v.BatchSize = b
			grid = append(grid, v)
		}
	}
	ds, err := kafkarel.CollectDataset(grid, kafkarel.SweepOptions{Messages: 2000, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	pred, metrics, err := kafkarel.TrainPredictor(ds, kafkarel.TrainConfig{Seed: 12, TargetMAE: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	perf, err := kafkarel.NewPerfModel(kafkarel.Calibration{})
	if err != nil {
		log.Fatal(err)
	}
	eval, err := kafkarel.NewEvaluator(pred, perf, kafkarel.Weights(profile.Weights))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out MAE = %.4f\n\n", metrics.MAE)

	at := base
	at.LossRate = 0.15
	fmt.Println("γ under the completeness-first weights at L = 15%:")
	bestB, bestGamma := 0, -1.0
	for _, b := range []int{1, 2, 5, 10} {
		v := at
		v.BatchSize = b
		score, err := eval.Score(v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  B=%2d: γ=%.3f (P̂_l=%.3f)\n", b, score.Gamma, score.Pl)
		if score.Gamma > bestGamma {
			bestB, bestGamma = b, score.Gamma
		}
	}
	fmt.Printf("\nKPI selects B = %d — the paper's Sec. IV-D conclusion: when the\n", bestB)
	fmt.Println("message size cannot change, batching before sending significantly")
	fmt.Println("reduces the loss rate.")
}
