// Quickstart walks the library's four layers end to end:
//
//  1. measure reliability on the simulated testbed,
//  2. collect a small training sweep and fit the ANN predictor (Eq. 1),
//  3. score configurations with the weighted KPI γ (Eq. 2),
//  4. let the stepwise search pick a better configuration (Sec. V).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"kafkarel"
)

func main() {
	log.SetFlags(0)

	// --- 1. Measure one configuration under an injected fault. ---------
	stream := kafkarel.Features{
		MessageSize:    200,             // M: ~web access record
		Timeliness:     5 * time.Second, // S
		DelayMs:        60,              // D: injected one-way delay
		LossRate:       0.18,            // L: injected packet loss
		Semantics:      kafkarel.AtMostOnce,
		BatchSize:      1,
		PollInterval:   0, // full load
		MessageTimeout: 500 * time.Millisecond,
	}
	res, err := kafkarel.RunExperiment(kafkarel.Experiment{
		Features: stream,
		Messages: 5000,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured: P_l=%.3f P_d=%.4f throughput=%.1f msg/s\n",
		res.Pl, res.Pd, res.Throughput)

	// --- 2. Collect a sweep around this operating point and train. -----
	var grid []kafkarel.Features
	for _, sem := range []int{kafkarel.AtMostOnce, kafkarel.AtLeastOnce} {
		for _, l := range []float64{0, 0.08, 0.15, 0.25} {
			for _, b := range []int{1, 2, 5} {
				for _, delta := range []time.Duration{0, 30 * time.Millisecond} {
					for _, to := range []time.Duration{500 * time.Millisecond, 1500 * time.Millisecond} {
						v := stream
						v.Semantics = sem
						v.LossRate = l
						v.BatchSize = b
						v.PollInterval = delta
						v.MessageTimeout = to
						grid = append(grid, v)
					}
				}
			}
		}
	}
	fmt.Printf("sweeping %d feature points...\n", len(grid))
	ds, err := kafkarel.CollectDataset(grid, kafkarel.SweepOptions{Messages: 1500, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	pred, metrics, err := kafkarel.TrainPredictor(ds, kafkarel.TrainConfig{Seed: 2, TargetMAE: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained predictor: held-out MAE=%.4f (paper bar: 0.02)\n", metrics.MAE)

	p, err := pred.Predict(stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted at the measured point: P̂_l=%.3f P̂_d=%.4f\n", p.Pl, p.Pd)

	// --- 3. Score with the weighted KPI. --------------------------------
	perf, err := kafkarel.NewPerfModel(kafkarel.Calibration{})
	if err != nil {
		log.Fatal(err)
	}
	weights := kafkarel.Weights{0.1, 0.1, 0.7, 0.1} // completeness first
	eval, err := kafkarel.NewEvaluator(pred, perf, weights)
	if err != nil {
		log.Fatal(err)
	}
	score, err := eval.Score(stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("γ(current config) = %.3f  (φ=%.3f μ=%.3f)\n", score.Gamma, score.Phi, score.Mu)

	// --- 4. Search for a configuration that meets a γ requirement. ------
	searcher, err := kafkarel.NewSearcher(eval)
	if err != nil {
		log.Fatal(err)
	}
	better, bestScore, err := searcher.Improve(stream, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search suggests: semantics=%d B=%d δ=%v T_o=%v  →  γ=%.3f\n",
		better.Semantics, better.BatchSize, better.PollInterval, better.MessageTimeout,
		bestScore.Gamma)

	// Verify the suggestion on the testbed.
	verify, err := kafkarel.RunExperiment(kafkarel.Experiment{
		Features: better,
		Messages: 5000,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified on the testbed: P_l %.3f → %.3f\n", res.Pl, verify.Pl)
}
