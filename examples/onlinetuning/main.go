// Onlinetuning demonstrates the repository's extension of the paper's
// declared future work (Sec. V: "Running an online algorithm for dynamic
// configuration is beyond the scope of this paper"): a controller that
// has NO forecast of the network. Every probe interval it reads the
// producer's own transport statistics — smoothed RTT as the delay
// estimate, retransmission rate as the loss estimate — feeds the
// estimates into the trained prediction model, and walks the
// configuration towards a γ requirement while the experiment runs.
//
// Run with: go run ./examples/onlinetuning
package main

import (
	"fmt"
	"log"
	"time"

	"kafkarel"
)

func main() {
	log.SetFlags(0)

	// A bursty unknown network (generated here, but the controller never
	// sees the trace — only its own socket statistics).
	spec := kafkarel.TraceSpec{
		Duration:     4 * time.Minute,
		Interval:     10 * time.Second,
		DelayScaleMs: 20,
		DelayShape:   1.5,
		GEGoodToBad:  0.3,
		GEBadToGood:  0.3,
		GoodLoss:     0.005,
		BadLoss:      0.18,
	}
	trace, err := spec.Generate(17)
	if err != nil {
		log.Fatal(err)
	}

	stream := kafkarel.Features{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		Semantics:      kafkarel.AtMostOnce,
		BatchSize:      1,
		PollInterval:   0,
		MessageTimeout: 1500 * time.Millisecond,
	}
	e := kafkarel.Experiment{
		Features:   stream,
		Messages:   10000,
		Seed:       17,
		Trace:      trace,
		MaxSimTime: spec.Duration,
	}

	// Static baseline: the default configuration rides out the bursts.
	static, err := kafkarel.RunExperiment(e)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static default:  P_l=%.3f P_d=%.4f\n", static.Pl, static.Pd)

	// Train the prediction model on a sweep of the configuration space
	// (the same model the offline scheme would use).
	fmt.Println("training the prediction model (configuration-space sweep)...")
	var grid []kafkarel.Features
	for _, sem := range []int{kafkarel.AtMostOnce, kafkarel.AtLeastOnce} {
		for _, b := range []int{1, 2, 5} {
			for _, delta := range []time.Duration{0, 30 * time.Millisecond, 90 * time.Millisecond} {
				for _, cond := range [][2]float64{{10, 0}, {100, 0.08}, {150, 0.18}} {
					v := stream
					v.Semantics = sem
					v.BatchSize = b
					v.PollInterval = delta
					v.DelayMs = cond[0]
					v.LossRate = cond[1]
					grid = append(grid, v)
				}
			}
		}
	}
	ds, err := kafkarel.CollectDataset(grid, kafkarel.SweepOptions{Messages: 1200, Seed: 18})
	if err != nil {
		log.Fatal(err)
	}
	pred, metrics, err := kafkarel.TrainPredictor(ds, kafkarel.TrainConfig{Seed: 18, TargetMAE: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out MAE = %.4f\n", metrics.MAE)

	perf, err := kafkarel.NewPerfModel(kafkarel.Calibration{})
	if err != nil {
		log.Fatal(err)
	}
	eval, err := kafkarel.NewEvaluator(pred, perf, kafkarel.Weights{0.1, 0.1, 0.7, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	searcher, err := kafkarel.NewSearcher(eval)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := kafkarel.NewOnlineController(searcher, stream, 0.93)
	if err != nil {
		log.Fatal(err)
	}
	ctrl.MinHold = 20 * time.Second

	// Same experiment, same network — but now the controller watches the
	// socket and retunes every 10 simulated seconds.
	online, err := kafkarel.RunOnlineExperiment(e, 10*time.Second, ctrl.Control)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online control:  P_l=%.3f P_d=%.4f  (%d reconfigurations)\n",
		online.Pl, online.Pd, ctrl.Changes())
	final := ctrl.Current()
	fmt.Printf("final config: semantics=%d B=%d δ=%v T_o=%v\n",
		final.Semantics, final.BatchSize, final.PollInterval, final.MessageTimeout)
	if online.Pl < static.Pl {
		fmt.Printf("\nwithout any forecast, online tuning removed %.0f%% of the loss.\n",
			100*(1-online.Pl/static.Pl))
	}
}
