// Package kafkarel is the public API of the reproduction of
// "Learning to Reliably Deliver Streaming Data with Apache Kafka"
// (Wu, Shang, Wolter — DSN 2020).
//
// The library bundles four layers:
//
//   - A deterministic simulated Kafka testbed (brokers, producer model
//     with the paper's Fig. 2 message state machine, TCP-like transport,
//     NetEm-style fault injection) that measures the reliability metrics
//     P_l (probability of message loss) and P_d (probability of message
//     duplication) for a configuration — see RunExperiment.
//   - The prediction framework of the paper's Eq. 1: an ANN trained on
//     testbed sweeps that predicts {P̂_l, P̂_d} from the features
//     (M, S, D, L, semantics, B, δ, T_o) — see CollectDataset and
//     TrainPredictor.
//   - The weighted KPI γ of Eq. 2 combining reliability with predicted
//     performance — see NewEvaluator.
//   - The dynamic-configuration scheme of Sec. V: stepwise configuration
//     search against a forecast network trace — see GenerateSchedule.
//
// Every evaluation artefact is built from independent, seed-deterministic
// simulated experiments, which execute on a bounded worker pool (the
// internal exprun layer). Per-experiment seeds are derived from each
// experiment's position, never from scheduling order, so figures,
// datasets and Table II outcomes are byte-identical for any worker
// count — parallelism is purely a wall-clock lever (Workers fields on
// FigureOptions, SweepOptions and DynConfOptions; -parallel on the
// CLIs).
//
// The quickstart example under examples/quickstart walks through all
// four layers in ~80 lines.
package kafkarel

import (
	"context"
	"io"
	"time"

	"kafkarel/internal/chaos"
	"kafkarel/internal/chaos/campaign"
	"kafkarel/internal/core"
	"kafkarel/internal/dynconf"
	"kafkarel/internal/features"
	"kafkarel/internal/figures"
	"kafkarel/internal/kpi"
	"kafkarel/internal/netem"
	"kafkarel/internal/obs"
	"kafkarel/internal/perfmodel"
	"kafkarel/internal/report"
	"kafkarel/internal/sweep"
	"kafkarel/internal/testbed"
	"kafkarel/internal/workload"
)

// Feature-space types (the paper's Eq. 1 inputs and datasets).
type (
	// Features is the prediction feature vector: message size M,
	// timeliness S, network delay D, loss rate L, delivery semantics,
	// batch size B, polling interval δ and message timeout T_o.
	Features = features.Vector
	// Sample pairs a feature vector with measured P_l / P_d.
	Sample = features.Sample
	// Dataset is a set of training samples with CSV persistence.
	Dataset = features.Dataset
)

// Delivery semantics codes for Features.Semantics.
const (
	AtMostOnce  = features.SemanticsAtMostOnce
	AtLeastOnce = features.SemanticsAtLeastOnce
	ExactlyOnce = features.SemanticsExactlyOnce
)

// Testbed types.
type (
	// Experiment is one simulated testbed run (Sec. III-E).
	Experiment = testbed.Experiment
	// Result carries the measured reliability and performance metrics.
	Result = testbed.Result
	// Calibration holds the producer-host cost constants.
	Calibration = testbed.Calibration
	// ConfigChange schedules a mid-run reconfiguration.
	ConfigChange = testbed.ConfigChange
	// Fleet describes a fleet-scale run: N producers over T topics of P
	// partitions each, keyed routing, consumer groups draining every
	// topic, aggregate load in users/sec — see RunFleet.
	Fleet = testbed.Fleet
	// FleetResult aggregates a fleet run; its Scorecard is byte-identical
	// for every worker count.
	FleetResult = testbed.FleetResult
	// FleetTopicResult is one topic's share of a fleet run.
	FleetTopicResult = testbed.FleetTopicResult
)

// Observability (the internal/obs subsystem). A run's metrics come back
// on Result.Metrics; the event timeline is captured by attaching a
// Tracer to Experiment.Tracer.
type (
	// MetricsSnapshot is the per-run observability summary returned
	// alongside P_l / P_d: retransmit counts, RTO maximum, queue-depth
	// histogram, Table I case counts, broker and replication activity.
	MetricsSnapshot = testbed.MetricsSnapshot
	// Tracer records the structured per-run event stream (record
	// lifecycle, transport, broker events) into a ring buffer and an
	// optional JSONL sink.
	Tracer = obs.Tracer
	// TraceEvent is one structured trace record stamped with virtual
	// time.
	TraceEvent = obs.Event
	// Timeline is the sim-time sampler: at a fixed virtual interval it
	// records one fixed-schema row of network, transport, producer and
	// broker state, interleaved with discrete annotations (config
	// switches, online decisions, broker failures). Attach it via
	// Experiment.Timeline; it comes back on Result.Timeline.
	Timeline = obs.Timeline
	// TimelineRow is one fixed-schema timeline sample: gauges are
	// instantaneous, counts are per-interval deltas.
	TimelineRow = obs.TimelineRow
	// TimelineAnnotation marks a discrete moment on the timeline.
	TimelineAnnotation = obs.TimelineAnnotation
	// RunReport is a rendered-ready run report: per-phase reliability,
	// timeline sparklines and the first complete duplicate chain.
	RunReport = report.Report
	// RunReportOptions tunes run-report rendering.
	RunReportOptions = report.Options
)

// Timeline annotation kinds.
const (
	AnnConfigSwitch   = obs.AnnConfigSwitch
	AnnOnlineDecision = obs.AnnOnlineDecision
	AnnBrokerEvent    = obs.AnnBrokerEvent
	AnnFault          = obs.AnnFault
)

// Chaos engine (the internal/chaos subsystem): deterministic sim-time
// fault plans, randomised campaign generation, and the delivery-
// invariant checker. Attach a plan via Experiment.FaultPlan; run whole
// campaigns with RunChaosCampaign or the cmd/chaos CLI.
type (
	// Fault is one scheduled fault (broker crash, unclean restart,
	// partition, loss burst, delay spike, connection reset, slowdown).
	Fault = chaos.Fault
	// FaultPlan is a validated set of faults on the sim-time axis.
	FaultPlan = chaos.Plan
	// FaultKind discriminates Fault entries.
	FaultKind = chaos.Kind
	// FaultGenConfig parameterises random plan generation.
	FaultGenConfig = chaos.GenConfig
	// TrialEvidence is the evidence bundle the invariant checker
	// consumes (producer outcome log, consumed keys, broker stats, ...).
	TrialEvidence = chaos.TrialInput
	// TrialVerdict separates invariant violations from classified,
	// expected-for-the-configuration anomalies.
	TrialVerdict = chaos.Verdict
	// ChaosCampaignConfig parameterises a randomised chaos campaign.
	ChaosCampaignConfig = campaign.Config
	// ChaosScorecard is a campaign's full result: one row per trial,
	// reproducible byte-for-byte from (seed, config) at any worker count.
	ChaosScorecard = campaign.Scorecard
	// ChaosTrialRow is one scorecard row, replayable from its recorded
	// (plan seed, workload seed) pair alone.
	ChaosTrialRow = campaign.Row
)

// Fault kinds for FaultPlan entries.
const (
	FaultBrokerCrash     = chaos.BrokerCrash
	FaultBrokerRecover   = chaos.BrokerRecover
	FaultUncleanRestart  = chaos.UncleanRestart
	FaultPartition       = chaos.Partition
	FaultLossBurst       = chaos.LossBurst
	FaultDelaySpike      = chaos.DelaySpike
	FaultConnReset       = chaos.ConnReset
	FaultBrokerSlow      = chaos.BrokerSlow
	FaultConsumerCrash   = chaos.ConsumerCrash
	FaultProcessorCrash  = chaos.ProcessorCrash
	FaultProcessorZombie = chaos.ProcessorZombie
)

// Chaos campaign modes.
const (
	ChaosModeExactlyOnce = campaign.ModeExactlyOnce
	ChaosModeAtLeastOnce = campaign.ModeAtLeastOnce
	ChaosModeTxn         = campaign.ModeTxn
)

// Transactional pipeline (the exactly-once consume-process-produce
// testbed): a broker-side transaction coordinator drives two-phase
// commits over input offsets and output records, processors are fenced
// by producer-epoch bumps, and the read_committed consumer sees only
// decided transactions. Run single trials with RunTxnPipeline, whole
// campaigns with RunChaosCampaign at ChaosModeTxn or cmd/chaos -txn.
type (
	// TxnExperiment configures one transactional pipeline trial.
	TxnExperiment = testbed.TxnExperiment
	// TxnResult is the trial's full evidence: attempts, committed
	// offsets, both isolation views, incarnation counts, txn stats.
	TxnResult = testbed.TxnResult
	// TxnEvidence is the evidence bundle VerifyTxnTrial consumes.
	TxnEvidence = chaos.TxnInput
	// TxnAttemptRecord is one consume-process-produce cycle's evidence.
	TxnAttemptRecord = chaos.TxnAttempt
	// TxnFaultGenConfig parameterises random transactional-plan
	// generation (broker outages, processor crashes, zombie races).
	TxnFaultGenConfig = chaos.TxnGenConfig
)

// RunTxnPipeline runs one transactional consume-process-produce trial:
// a filler produces the input topic, transactional processors move
// records to the output topic with offsets committed inside the same
// transaction, and the result carries the read_committed and
// read_uncommitted views plus every attempt's outcome.
func RunTxnPipeline(ctx context.Context, e TxnExperiment) (TxnResult, error) {
	return testbed.RunTxnCtx(ctx, e)
}

// VerifyTxnTrial checks a finished transactional trial against the
// exactly-once invariants (no phantom commits, zombie fencing, commit
// atomicity, exactly-once against the committed watermark, isolation
// residue classification, completion).
func VerifyTxnTrial(in TxnEvidence) TrialVerdict { return chaos.VerifyTxn(in) }

// GenerateTxnFaultPlan samples a random fault plan for a transactional
// trial; deterministic in (seed, config) like GenerateFaultPlan.
func GenerateTxnFaultPlan(seed uint64, cfg TxnFaultGenConfig) FaultPlan {
	return chaos.GenerateTxnPlan(seed, cfg)
}

// GenerateFaultPlan samples a random, Validate-clean fault plan from a
// seed; the same (seed, config) always yields the same plan.
func GenerateFaultPlan(seed uint64, cfg FaultGenConfig) FaultPlan {
	return chaos.GeneratePlan(seed, cfg)
}

// VerifyTrial checks a finished trial's evidence against the delivery
// invariants of its configuration (acked ⇒ appended, exactly-once
// uniqueness, per-partition ordering at max-in-flight 1, conservation,
// duplicate accounting, timeline consistency).
func VerifyTrial(in TrialEvidence) TrialVerdict { return chaos.Verify(in) }

// RunChaosCampaign runs a randomised fault-injection campaign: Trials
// generated plans executed in parallel on the experiment worker pool,
// each trial verified. The scorecard is identical for every worker
// count.
func RunChaosCampaign(ctx context.Context, cfg ChaosCampaignConfig) (ChaosScorecard, error) {
	return campaign.Run(ctx, cfg)
}

// ReplayChaosTrial re-runs one campaign trial from its scorecard seeds;
// the returned row is byte-identical to the campaign's.
func ReplayChaosTrial(cfg ChaosCampaignConfig, planSeed, workloadSeed uint64) (ChaosTrialRow, error) {
	return campaign.RunTrial(cfg, planSeed, workloadSeed)
}

// NewTracer returns an event tracer with the given ring capacity
// (<= 0 takes the default). Attach it via Experiment.Tracer.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewTimeline returns a sim-time timeline sampling every interval
// (<= 0 takes the 10 s default). Attach it via Experiment.Timeline; a
// scaled run uses it as a template and returns one entity-tagged
// timeline per producer on Result.Timelines.
func NewTimeline(interval time.Duration) *Timeline { return obs.NewTimeline(interval) }

// WriteMergedTimelineCSV renders several entity-tagged timelines (a
// fleet's, or a scaled run's) as one CSV stream ordered by virtual
// time; the bytes are independent of worker count.
func WriteMergedTimelineCSV(w io.Writer, timelines []*Timeline) error {
	return obs.WriteMergedCSV(w, timelines)
}

// BuildRunReport assembles a run report from a result carrying a
// timeline and (optionally) the tracer's events; render it with
// Report.Render, cross-check its totals with Report.Verify.
func BuildRunReport(res Result, events []TraceEvent, opts RunReportOptions) (*RunReport, error) {
	return report.Build(res, events, opts)
}

// ReadTraceJSONL parses a JSONL trace written by a tracer sink.
func ReadTraceJSONL(r io.Reader) ([]TraceEvent, error) { return obs.ReadJSONL(r) }

// DuplicateChains extracts from a trace the per-batch event chains of
// Case-5 duplicates (send → spurious timeout → retry → duplicate
// append), the Fig. 8 mechanism.
func DuplicateChains(events []TraceEvent) [][]TraceEvent { return obs.DuplicateChains(events) }

// IsCompleteDuplicateChain reports whether a chain shows the full
// Fig. 8 causal sequence.
func IsCompleteDuplicateChain(chain []TraceEvent) bool { return obs.IsCompleteDuplicateChain(chain) }

// RunExperiment measures P_l and P_d (and throughput, latency, staleness)
// for one feature vector on the simulated testbed.
func RunExperiment(e Experiment) (Result, error) { return testbed.Run(e) }

// RunScaledExperiment splits the experiment across n producers following
// the paper's scaling rule N_p/δ = N_p'/(δ+Δδ) (Sec. IV-C). The
// per-producer simulations fan out over the experiment worker pool.
func RunScaledExperiment(e Experiment, producers int) (Result, error) {
	return testbed.RunScaled(e, producers)
}

// RunScaledExperimentContext is RunScaledExperiment with cancellation
// and an explicit worker bound (<= 0: GOMAXPROCS); the aggregate result
// is identical for every worker count.
func RunScaledExperimentContext(ctx context.Context, e Experiment, producers, workers int) (Result, error) {
	return testbed.RunScaledContext(ctx, e, producers, workers)
}

// RunFleet executes a fleet-scale run: every topic is an independent
// simulation (fanned out over the worker pool) whose producers share
// the topic under keyed routing; results merge in topic order, so
// FleetResult.Scorecard and the merged timelines are byte-identical at
// any worker count.
func RunFleet(f Fleet) (FleetResult, error) { return testbed.RunFleet(f) }

// RunFleetContext is RunFleet with cancellation and an explicit worker
// bound (<= 0: GOMAXPROCS).
func RunFleetContext(ctx context.Context, f Fleet, workers int) (FleetResult, error) {
	return testbed.RunFleetContext(ctx, f, workers)
}

// DefaultCalibration returns the host cost constants used throughout the
// reproduction (see DESIGN.md §5).
func DefaultCalibration() Calibration { return testbed.DefaultCalibration() }

// Sweep / dataset collection.
type (
	// SweepOptions tunes a training-data collection run.
	SweepOptions = sweep.Options
	// SensitivityOptions tunes the ±50 % feature-selection analysis.
	SensitivityOptions = sweep.SensitivityOptions
	// SensitivityResult is one parameter's perturbation impact.
	SensitivityResult = sweep.SensitivityResult
)

// NormalGrid and AbnormalGrid enumerate the Fig. 3 training-data
// collection design's two feature subspaces.
func NormalGrid() []Features   { return sweep.NormalGrid() }
func AbnormalGrid() []Features { return sweep.AbnormalGrid() }

// CollectDataset runs one testbed experiment per grid point. Grid
// points fan out over the experiment worker pool (SweepOptions.Workers);
// the dataset is identical for every worker count.
func CollectDataset(grid []Features, opts SweepOptions) (Dataset, error) {
	return sweep.Collect(grid, opts)
}

// CollectDatasetStream runs the sweep and yields each labelled sample
// in grid order as soon as its prefix of the grid has completed, so
// long collections can be persisted incrementally and cancelled via ctx
// without losing the finished prefix.
func CollectDatasetStream(ctx context.Context, grid []Features, opts SweepOptions, yield func(Sample) error) error {
	return sweep.CollectStream(ctx, grid, opts, yield)
}

// Sensitivity reproduces the Sec. III-D ±50 % perturbation analysis.
func Sensitivity(base Features, opts SensitivityOptions) ([]SensitivityResult, error) {
	return sweep.Sensitivity(base, opts)
}

// ReadDatasetCSV parses a dataset written by Dataset.WriteCSV.
func ReadDatasetCSV(r io.Reader) (Dataset, error) { return features.ReadCSV(r) }

// Prediction framework.
type (
	// Predictor is the trained Eq. 1 model {P̂_l, P̂_d} = f(features).
	Predictor = core.Predictor
	// Prediction is one model output.
	Prediction = core.Prediction
	// TrainConfig controls predictor training.
	TrainConfig = core.TrainConfig
	// TrainMetrics reports held-out evaluation (the paper: MAE < 0.02).
	TrainMetrics = core.Metrics
)

// Architectures for TrainConfig.
const (
	ArchitecturePaper   = core.ArchitecturePaper
	ArchitectureCompact = core.ArchitectureCompact
)

// TrainPredictor fits one ANN per delivery semantics in the dataset.
func TrainPredictor(ds Dataset, cfg TrainConfig) (*Predictor, TrainMetrics, error) {
	return core.Train(ds, cfg)
}

// LoadPredictor reads a predictor written by Predictor.Save.
func LoadPredictor(r io.Reader) (*Predictor, error) { return core.Load(r) }

// KPI (Eq. 2).
type (
	// Weights are ω1..ω4 for φ, μ, (1-P_l), (1-P_d).
	Weights = kpi.Weights
	// Evaluator scores configurations with γ.
	Evaluator = kpi.Evaluator
	// Breakdown is a γ score with its components.
	Breakdown = kpi.Breakdown
	// PerfModel predicts φ and μ (the ref. [6] stand-in).
	PerfModel = perfmodel.Model
)

// DefaultWeights returns the paper's empirical (0.3, 0.3, 0.3, 0.1).
func DefaultWeights() Weights { return kpi.DefaultWeights() }

// NewPerfModel builds the performance predictor; a zero calibration
// takes the defaults.
func NewPerfModel(cal Calibration) (*PerfModel, error) { return perfmodel.New(cal) }

// NewEvaluator combines the reliability predictor and performance model
// into a γ scorer.
func NewEvaluator(p *Predictor, perf *PerfModel, w Weights) (*Evaluator, error) {
	return kpi.NewEvaluator(p, perf, w)
}

// Dynamic configuration (Sec. V).
type (
	// Searcher walks configuration space until γ meets a requirement.
	Searcher = dynconf.Searcher
	// ScheduleEntry is one line of an offline configuration schedule.
	ScheduleEntry = dynconf.ScheduleEntry
	// StreamOutcome is one Table II row pair (default vs dynamic R_l/R_d).
	StreamOutcome = dynconf.StreamOutcome
	// DynConfOptions configures the Table II pipeline.
	DynConfOptions = dynconf.Options
	// StreamProfile describes an application stream (Table II).
	StreamProfile = workload.Profile
)

// NewSearcher builds a stepwise configuration searcher.
func NewSearcher(eval *Evaluator) (*Searcher, error) { return dynconf.NewSearcher(eval) }

// GenerateSchedule produces the offline configuration file for a
// forecast network trace.
func GenerateSchedule(s *Searcher, trace NetworkTrace, stream Features, target float64, interval time.Duration) ([]ScheduleEntry, error) {
	return dynconf.GenerateSchedule(s, trace, stream, target, interval)
}

// ScheduleChanges converts schedule entries into testbed reconfiguration
// events.
func ScheduleChanges(entries []ScheduleEntry) []ConfigChange {
	return dynconf.ToConfigChanges(entries)
}

// ThresholdSchedule builds a rule-based offline schedule without a
// trained model: the protective configuration whenever the forecast
// segment's loss rate is at or above lossBar, the stream's own
// configuration otherwise.
func ThresholdSchedule(trace NetworkTrace, stream, protective Features, interval time.Duration, lossBar float64) ([]ScheduleEntry, error) {
	return dynconf.ThresholdSchedule(trace, stream, protective, interval, lossBar)
}

// EvaluateDynamicConfiguration runs the full Table II pipeline.
func EvaluateDynamicConfiguration(profiles []StreamProfile, opts DynConfOptions) ([]StreamOutcome, error) {
	return dynconf.TableII(profiles, opts)
}

// EvaluateDynamicConfigurationContext is EvaluateDynamicConfiguration
// with cancellation.
func EvaluateDynamicConfigurationContext(ctx context.Context, profiles []StreamProfile, opts DynConfOptions) ([]StreamOutcome, error) {
	return dynconf.TableIIContext(ctx, profiles, opts)
}

// Online dynamic configuration — the paper's declared future work,
// implemented as an extension: no forecast, the controller estimates the
// network from the producer's own transport statistics.
type (
	// OnlineController reconfigures from live transport probes.
	OnlineController = dynconf.OnlineController
	// NetworkProbe is one live network estimate.
	NetworkProbe = testbed.NetworkProbe
)

// NewOnlineController builds an online controller starting from the
// given configuration and pursuing the γ target.
func NewOnlineController(s *Searcher, start Features, target float64) (*OnlineController, error) {
	return dynconf.NewOnlineController(s, start, target)
}

// RunOnlineExperiment executes an experiment while a controller
// reconfigures the producer from live probes sampled every interval.
func RunOnlineExperiment(e Experiment, interval time.Duration, ctrl func(NetworkProbe) (Features, bool)) (Result, error) {
	return testbed.RunOnline(e, interval, ctrl)
}

// Stream profiles of Table II.
var (
	SocialMedia = workload.SocialMedia
	WebLogs     = workload.WebLogs
	GameTraffic = workload.GameTraffic
)

// Network emulation.
type (
	// NetworkTrace is a piecewise network-condition schedule (Fig. 9).
	NetworkTrace = netem.Trace
	// TraceSpec parameterises synthetic Fig. 9 traces (Pareto delay,
	// Gilbert-Elliot loss).
	TraceSpec = netem.TraceSpec
	// TracePoint is one (time, delay, loss) sample of a trace.
	TracePoint = netem.Point
)

// DefaultTraceSpec reproduces the character of the paper's Fig. 9
// network.
func DefaultTraceSpec() TraceSpec { return netem.DefaultTraceSpec() }

// Figure regeneration (see EXPERIMENTS.md for paper-vs-measured).
type (
	FigureOptions  = figures.Options
	Fig4Point      = figures.Fig4Point
	Fig5Point      = figures.Fig5Point
	Fig6Point      = figures.Fig6Point
	Fig7Point      = figures.Fig7Point
	Fig8Point      = figures.Fig8Point
	Table1Result   = figures.Table1Result
	AccuracyResult = figures.AccuracyResult
	// ThroughputBatchPoint and ThroughputPartitionPoint form the
	// throughput figure family (extension): delivered msg/s over batch
	// size and over per-topic partition count.
	ThroughputBatchPoint     = figures.ThroughputBatchPoint
	ThroughputPartitionPoint = figures.ThroughputPartitionPoint
)

// Figure generators, one per evaluation artefact in the paper.
func Fig4(o FigureOptions) ([]Fig4Point, error)        { return figures.Fig4(o) }
func Fig5(o FigureOptions) ([]Fig5Point, error)        { return figures.Fig5(o) }
func Fig6(o FigureOptions) ([]Fig6Point, error)        { return figures.Fig6(o) }
func Fig7(o FigureOptions) ([]Fig7Point, error)        { return figures.Fig7(o) }
func Fig8(o FigureOptions) ([]Fig8Point, error)        { return figures.Fig8(o) }
func Fig9(seed uint64) ([]TracePoint, error)           { return figures.Fig9(seed) }
func Table1(o FigureOptions) (Table1Result, error)     { return figures.Table1(o) }
func Accuracy(o FigureOptions) (AccuracyResult, error) { return figures.Accuracy(o) }

// Throughput figure family (extension beyond the paper's figures).
func ThroughputVsBatch(o FigureOptions) ([]ThroughputBatchPoint, error) {
	return figures.ThroughputVsBatch(o)
}
func ThroughputVsPartitions(o FigureOptions) ([]ThroughputPartitionPoint, error) {
	return figures.ThroughputVsPartitions(o)
}
