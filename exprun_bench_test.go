package kafkarel_test

// The execution-layer scaling benches record how figure-reproduction
// wall time responds to the worker-pool size. Results are identical for
// every worker count (the determinism tests assert that); these benches
// record the perf side of the trade in the bench trajectory. Run with:
//
//	go test -bench=ExprunScaling -benchtime=1x
//
// EXPERIMENTS.md records measured speedups.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"kafkarel"
)

// scalingWorkers is the swept pool-size axis.
var scalingWorkers = []int{1, 2, 4, 8}

// speedupFloor is the minimum acceptable parallel speedup on a host
// with at least `workers` cores: two workers must beat sequential
// execution outright, and four or more must exceed 1.5x. The bars stay
// well below ideal scaling (4 workers ~4x) — they catch the execution
// layer silently serialising or drowning in shared-state overhead, not
// scheduler jitter.
func speedupFloor(workers int) float64 {
	if workers >= 4 {
		return 1.5
	}
	return 1.0
}

// looseSpeedupCheck fails a multi-core run whose parallel speedup is at
// or below the floor for its worker count. On hosts with fewer cores
// than workers it just records the measurement.
func looseSpeedupCheck(b *testing.B, workers int, seq, par time.Duration) {
	if seq <= 0 || par <= 0 {
		return
	}
	speedup := float64(seq) / float64(par)
	b.ReportMetric(speedup, "speedup_vs_w1")
	if runtime.GOMAXPROCS(0) >= workers && workers > 1 && speedup <= speedupFloor(workers) {
		b.Errorf("workers=%d on a %d-core host: speedup %.2fx vs workers=1 (want > %.2fx)",
			workers, runtime.GOMAXPROCS(0), speedup, speedupFloor(workers))
	}
}

// BenchmarkExprunScaling measures Fig. 7 reproduction (88 experiments)
// wall time at workers ∈ {1, 2, 4, 8}.
func BenchmarkExprunScaling(b *testing.B) {
	perWorker := map[int]time.Duration{}
	for _, workers := range scalingWorkers {
		b.Run(fmt.Sprintf("fig7/workers=%d", workers), func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				points, err := kafkarel.Fig7(kafkarel.FigureOptions{
					Messages: 600, Seed: 1, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(points) != 88 {
					b.Fatalf("%d points", len(points))
				}
			}
			perWorker[workers] = time.Since(start) / time.Duration(b.N)
			looseSpeedupCheck(b, workers, perWorker[1], perWorker[workers])
		})
	}
}

// BenchmarkFig3SweepScaling measures the Fig. 3 training-data sweep
// (the paper's collection bottleneck) at workers 1 vs 4 over a grid
// slice spanning both subspaces.
func BenchmarkFig3SweepScaling(b *testing.B) {
	grid := append(kafkarel.NormalGrid()[:24], kafkarel.AbnormalGrid()[:24]...)
	perWorker := map[int]time.Duration{}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				ds, err := kafkarel.CollectDataset(grid, kafkarel.SweepOptions{
					Messages: 600, Seed: 1, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(ds) != len(grid) {
					b.Fatalf("%d samples", len(ds))
				}
			}
			perWorker[workers] = time.Since(start) / time.Duration(b.N)
			looseSpeedupCheck(b, workers, perWorker[1], perWorker[workers])
		})
	}
}
