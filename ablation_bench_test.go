package kafkarel_test

// Ablation benchmarks isolate the mechanisms DESIGN.md §5 credits for
// the paper's figure shapes: remove one mechanism, re-run the relevant
// operating point, and report the metric with and without it.

import (
	"testing"
	"time"

	"kafkarel"
)

// BenchmarkAblationStalls removes the heavy-tailed send-path stalls: the
// full-load no-fault loss of Figs. 5-6 should largely disappear,
// confirming the stalls (not a hidden overload) drive those curves at
// M=200B.
func BenchmarkAblationStalls(b *testing.B) {
	v := kafkarel.Features{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        10,
		Semantics:      kafkarel.AtMostOnce,
		BatchSize:      1,
		PollInterval:   0,
		MessageTimeout: 500 * time.Millisecond,
	}
	noStalls := kafkarel.DefaultCalibration()
	noStalls.StallProb = 1e-12 // effectively off (0 would mean "use defaults")
	for i := 0; i < b.N; i++ {
		with, err := kafkarel.RunExperiment(kafkarel.Experiment{
			Features: v, Messages: benchMessages, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		without, err := kafkarel.RunExperiment(kafkarel.Experiment{
			Features: v, Messages: benchMessages, Seed: uint64(i), Calibration: noStalls,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(with.Pl, "Pl_with_stalls")
		b.ReportMetric(without.Pl, "Pl_without_stalls")
	}
}

// BenchmarkAblationBackpressure removes at-least-once intake pacing by
// inflating the queue limit: the bounded-buffer backpressure is what
// keeps acknowledged delivery nearly lossless at full load (Fig. 5's
// at-least-once curve).
func BenchmarkAblationBackpressure(b *testing.B) {
	v := kafkarel.Features{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        100,
		LossRate:       0.19,
		Semantics:      kafkarel.AtLeastOnce,
		BatchSize:      1,
		PollInterval:   0,
		MessageTimeout: 1500 * time.Millisecond,
	}
	for i := 0; i < b.N; i++ {
		bounded, err := kafkarel.RunExperiment(kafkarel.Experiment{
			Features: v, Messages: benchMessages, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		unbounded, err := kafkarel.RunExperiment(kafkarel.Experiment{
			Features: v, Messages: benchMessages, Seed: uint64(i), QueueLimit: 1 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bounded.Pl, "Pl_bounded_queue")
		b.ReportMetric(unbounded.Pl, "Pl_unbounded_queue")
	}
}

// BenchmarkAblationSpuriousRetry stretches the per-attempt request
// timeout far beyond any delay inflation: Case 5 duplicates (Fig. 8)
// should vanish, confirming the spurious-timeout retry race is the
// duplicate mechanism.
func BenchmarkAblationSpuriousRetry(b *testing.B) {
	v := kafkarel.Features{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        100,
		LossRate:       0.15,
		Semantics:      kafkarel.AtLeastOnce,
		BatchSize:      4,
		PollInterval:   0,
		MessageTimeout: 3 * time.Second,
	}
	for i := 0; i < b.N; i++ {
		racy, err := kafkarel.RunExperiment(kafkarel.Experiment{
			Features: v, Messages: benchMessages, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		patient, err := kafkarel.RunExperiment(kafkarel.Experiment{
			Features: v, Messages: benchMessages, Seed: uint64(i),
			RequestTimeout: 30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(racy.Pd, "Pd_2s_request_timeout")
		b.ReportMetric(patient.Pd, "Pd_30s_request_timeout")
	}
}

// BenchmarkAblationIdempotence compares at-least-once with the
// exactly-once extension at the same duplicate-prone operating point:
// broker-side sequence de-duplication should eliminate P_d.
func BenchmarkAblationIdempotence(b *testing.B) {
	v := kafkarel.Features{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        100,
		LossRate:       0.15,
		Semantics:      kafkarel.AtLeastOnce,
		BatchSize:      4,
		PollInterval:   0,
		MessageTimeout: 3 * time.Second,
	}
	for i := 0; i < b.N; i++ {
		alo, err := kafkarel.RunExperiment(kafkarel.Experiment{
			Features: v, Messages: benchMessages, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		eo := v
		eo.Semantics = kafkarel.ExactlyOnce
		idem, err := kafkarel.RunExperiment(kafkarel.Experiment{
			Features: eo, Messages: benchMessages, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(alo.Pd, "Pd_at_least_once")
		b.ReportMetric(idem.Pd, "Pd_exactly_once")
	}
}

// BenchmarkBrokerFailover measures the broker-failure extension: the
// partition leader crashes and recovers mid-run while retries keep the
// stream alive.
func BenchmarkBrokerFailover(b *testing.B) {
	v := kafkarel.Features{
		MessageSize:    200,
		Timeliness:     5 * time.Second,
		DelayMs:        10,
		Semantics:      kafkarel.AtLeastOnce,
		BatchSize:      1,
		PollInterval:   20 * time.Millisecond,
		MessageTimeout: 10 * time.Second,
	}
	for i := 0; i < b.N; i++ {
		res, err := kafkarel.RunExperiment(kafkarel.Experiment{
			Features:       v,
			Messages:       benchMessages,
			Seed:           uint64(i),
			MaxRetries:     20,
			RequestTimeout: 200 * time.Millisecond,
			FaultPlan: kafkarel.FaultPlan{Faults: []kafkarel.Fault{
				{Kind: kafkarel.FaultBrokerCrash, At: 5 * time.Second, Broker: 0},
				{Kind: kafkarel.FaultBrokerRecover, At: 15 * time.Second, Broker: 0},
			}},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Pl, "Pl_with_failover")
	}
}
