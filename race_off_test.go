//go:build !race

package kafkarel_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
