package kafkarel_test

// Fleet-scale benches: how the shard-per-topic fleet responds to the
// worker-pool size, and what the sharded registry family buys over a
// single shared registry hammered from every shard. Results are
// identical for every worker count (fleet determinism tests assert
// that); these benches record the perf side. Run with:
//
//	go test -bench=Fleet -benchtime=1x
//
// EXPERIMENTS.md records measured numbers; make bench-gate keeps the
// FleetScaling results from regressing.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"kafkarel"
	"kafkarel/internal/obs"
)

// fleetBench is the benchmark fleet: 32 producers over 8 topic shards,
// so an 8-worker pool has one shard per worker and the scaling signal
// is the shard fan-out, not intra-shard work.
func fleetBench(seed uint64) kafkarel.Fleet {
	return kafkarel.Fleet{
		Features: kafkarel.Features{
			MessageSize:    200,
			Timeliness:     5 * time.Second,
			DelayMs:        5,
			LossRate:       0.02,
			Semantics:      kafkarel.AtLeastOnce,
			BatchSize:      2,
			MessageTimeout: 2 * time.Second,
		},
		Producers:  32,
		Topics:     8,
		Partitions: 8,
		Messages:   9600,
		Seed:       seed,
	}
}

// BenchmarkFleetScaling measures one fleet run (32 producers, 8 topics,
// 8 partitions, 9600 messages, keyed routing, consumer-group drain) at
// workers ∈ {1, 2, 4, 8}.
func BenchmarkFleetScaling(b *testing.B) {
	perWorker := map[int]time.Duration{}
	for _, workers := range scalingWorkers {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := kafkarel.RunFleetContext(context.Background(), fleetBench(uint64(i)+1), workers)
				if err != nil {
					b.Fatal(err)
				}
				if res.Acquired != 9600 {
					b.Fatalf("acquired = %d", res.Acquired)
				}
				b.ReportMetric(res.Pl, "Pl")
			}
			perWorker[workers] = time.Since(start) / time.Duration(b.N)
			looseSpeedupCheck(b, workers, perWorker[1], perWorker[workers])
		})
	}
}

// BenchmarkFleetRegistry isolates the registry design choice the fleet
// rests on: 8 writers each driving 200k counter increments land either
// on their own shard of an obs.Sharded family (merged once at the end)
// or on one shared registry's atomics. The sharded variant has no
// cross-writer cache-line traffic; the shared one serialises every
// increment through contended atomics — the scaling bottleneck a global
// registry would reintroduce into the shard fan-out. On a single-core
// host the two variants converge (there is no cross-core traffic to
// avoid); the gap appears with GOMAXPROCS ≥ the writer count.
func BenchmarkFleetRegistry(b *testing.B) {
	const writers = 8
	const incs = 200_000
	b.Run("sharded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := obs.NewSharded(writers)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				c := s.Shard(w).Counter("bench_incs")
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < incs; k++ {
						c.Inc()
					}
				}()
			}
			wg.Wait()
			if got := s.Merged().Counters[0].Value; got != writers*incs {
				b.Fatalf("merged = %d", got)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := obs.NewRegistry()
			c := r.Counter("bench_incs")
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < incs; k++ {
						c.Inc()
					}
				}()
			}
			wg.Wait()
			if got := r.Snapshot().Counters[0].Value; got != writers*incs {
				b.Fatalf("snapshot = %d", got)
			}
		}
	})
}
