package kafkarel_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation at reduced message counts and reports the headline
// metric of each as a custom benchmark metric. Run with:
//
//	go test -bench=. -benchmem
//
// For full-scale runs (10^5-10^6 messages per point) use cmd/repro.

import (
	"testing"
	"time"

	"kafkarel"
)

const benchMessages = 2000

// BenchmarkTable1MessageStates empirically populates Table I's case
// distribution (Fig. 2 state machine) under a faulted retry-enabled run.
func BenchmarkTable1MessageStates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := kafkarel.Table1(kafkarel.FigureOptions{Messages: benchMessages, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Share, row.Case.String()+"_share")
		}
		b.ReportMetric(float64(res.Case5)/float64(res.Total), "case5_share")
	}
}

// BenchmarkFig3Sweep measures the training-data collection design: the
// per-experiment cost of sweeping the Fig. 3 feature space.
func BenchmarkFig3Sweep(b *testing.B) {
	grid := kafkarel.NormalGrid()[:8]
	for i := 0; i < b.N; i++ {
		ds, err := kafkarel.CollectDataset(grid, kafkarel.SweepOptions{
			Messages: 500,
			Seed:     uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(ds)), "experiments")
	}
}

// BenchmarkFig4MessageSize regenerates the message-size study
// (P_l vs M at D=100 ms, L=19%).
func BenchmarkFig4MessageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := kafkarel.Fig4(kafkarel.FigureOptions{Messages: benchMessages, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.MessageSize == 100 && p.Semantics == kafkarel.AtMostOnce {
				b.ReportMetric(p.Pl, "Pl_amo_100B")
			}
			if p.MessageSize == 100 && p.Semantics == kafkarel.AtLeastOnce {
				b.ReportMetric(p.Pl, "Pl_alo_100B")
			}
			if p.MessageSize == 1000 && p.Semantics == kafkarel.AtMostOnce {
				b.ReportMetric(p.Pl, "Pl_amo_1000B")
			}
		}
	}
}

// BenchmarkFig5MessageTimeout regenerates the T_o study at full load with
// no faults.
func BenchmarkFig5MessageTimeout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := kafkarel.Fig5(kafkarel.FigureOptions{Messages: benchMessages, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Semantics != kafkarel.AtMostOnce {
				continue
			}
			switch p.Timeout {
			case 500 * time.Millisecond:
				b.ReportMetric(p.Pl, "Pl_amo_500ms")
			case 2500 * time.Millisecond:
				b.ReportMetric(p.Pl, "Pl_amo_2500ms")
			}
		}
	}
}

// BenchmarkFig6PollingInterval regenerates the δ study at T_o = 500 ms.
func BenchmarkFig6PollingInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := kafkarel.Fig6(kafkarel.FigureOptions{Messages: benchMessages, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Pl, "Pl_fullload")
		b.ReportMetric(points[len(points)-1].Pl, "Pl_delta90ms")
	}
}

// BenchmarkFig7Batching regenerates the batching-vs-loss family
// (P_l vs L for B ∈ {1..10}, both semantics).
func BenchmarkFig7Batching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := kafkarel.Fig7(kafkarel.FigureOptions{Messages: benchMessages, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Semantics != kafkarel.AtLeastOnce || p.LossRate != 0.20 {
				continue
			}
			switch p.BatchSize {
			case 1:
				b.ReportMetric(p.Pl, "Pl_alo_L20_B1")
			case 10:
				b.ReportMetric(p.Pl, "Pl_alo_L20_B10")
			}
		}
	}
}

// BenchmarkFig8Duplicates regenerates the duplicate study
// (P_d vs B under at-least-once).
func BenchmarkFig8Duplicates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := kafkarel.Fig8(kafkarel.FigureOptions{Messages: benchMessages, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		var maxPd float64
		for _, p := range points {
			if p.Pd > maxPd {
				maxPd = p.Pd
			}
		}
		b.ReportMetric(maxPd, "Pd_max")
	}
}

// BenchmarkFig9NetworkTrace generates the dynamic-configuration network
// trace (Pareto delay, Gilbert-Elliot loss).
func BenchmarkFig9NetworkTrace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := kafkarel.Fig9(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		var meanLoss float64
		for _, p := range series {
			meanLoss += p.Loss
		}
		b.ReportMetric(meanLoss/float64(len(series)), "mean_loss")
	}
}

// BenchmarkANNTraining trains the Eq. 1 predictor on a reduced Fig. 3
// sweep and reports the held-out MAE (the paper's bar is 0.02).
func BenchmarkANNTraining(b *testing.B) {
	// Stride-sample both Fig. 3 grids so the reduced sweep still spans
	// every feature dimension.
	var grid []kafkarel.Features
	for i, v := range kafkarel.NormalGrid() {
		if i%4 == 0 {
			grid = append(grid, v)
		}
	}
	for i, v := range kafkarel.AbnormalGrid() {
		if i%6 == 0 {
			grid = append(grid, v)
		}
	}
	ds, err := kafkarel.CollectDataset(grid, kafkarel.SweepOptions{Messages: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, metrics, err := kafkarel.TrainPredictor(ds, kafkarel.TrainConfig{
			Seed:      uint64(i),
			TargetMAE: 0.01,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metrics.MAE, "held_out_MAE")
	}
}

// BenchmarkTable2DynamicConfig runs the dynamic-configuration pipeline
// (reduced: one stream, short trace) and reports R_l default vs dynamic.
func BenchmarkTable2DynamicConfig(b *testing.B) {
	spec := kafkarel.TraceSpec{
		Duration:     4 * time.Minute,
		Interval:     10 * time.Second,
		DelayScaleMs: 20,
		DelayShape:   1.5,
		GEGoodToBad:  0.25,
		GEBadToGood:  0.3,
		GoodLoss:     0.005,
		BadLoss:      0.17,
	}
	for i := 0; i < b.N; i++ {
		outcomes, err := kafkarel.EvaluateDynamicConfiguration(
			[]kafkarel.StreamProfile{kafkarel.WebLogs},
			kafkarel.DynConfOptions{
				Messages:      6000,
				Seed:          uint64(i) + 5,
				TraceSpec:     spec,
				Interval:      30 * time.Second,
				TrainMessages: 800,
			})
		if err != nil {
			b.Fatal(err)
		}
		o := outcomes[0]
		b.ReportMetric(o.DefaultRl, "Rl_default")
		b.ReportMetric(o.DynamicRl, "Rl_dynamic")
		b.ReportMetric(o.DynamicRd, "Rd_dynamic")
	}
}

// BenchmarkProducerScaling compares an overloaded single producer with a
// scaled-out fleet at the same aggregate rate (Sec. IV-C).
func BenchmarkProducerScaling(b *testing.B) {
	e := kafkarel.Experiment{
		Features: kafkarel.Features{
			MessageSize:    200,
			Timeliness:     5 * time.Second,
			DelayMs:        10,
			Semantics:      kafkarel.AtMostOnce,
			BatchSize:      1,
			PollInterval:   0,
			MessageTimeout: 500 * time.Millisecond,
		},
		Messages: benchMessages,
	}
	for i := 0; i < b.N; i++ {
		e.Seed = uint64(i)
		single, err := kafkarel.RunExperiment(e)
		if err != nil {
			b.Fatal(err)
		}
		scaled, err := kafkarel.RunScaledExperiment(e, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(single.Pl, "Pl_1_producer")
		b.ReportMetric(scaled.Pl, "Pl_4_producers")
	}
}
