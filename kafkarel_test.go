package kafkarel_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"kafkarel"
)

// The shape tests below assert the qualitative structure of every
// reproduced figure — orderings, monotone trends, knees and crossovers —
// on reduced message counts. EXPERIMENTS.md records the full-scale point
// values next to the paper's.

const shapeMessages = 2500

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	points, err := kafkarel.Fig4(kafkarel.FigureOptions{Messages: shapeMessages, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl := map[[2]int]float64{}
	for _, p := range points {
		pl[[2]int{p.MessageSize, p.Semantics}] = p.Pl
	}
	amo := func(m int) float64 { return pl[[2]int{m, kafkarel.AtMostOnce}] }
	alo := func(m int) float64 { return pl[[2]int{m, kafkarel.AtLeastOnce}] }

	// Small messages are far likelier to be lost (Sec. IV-A).
	if amo(100) < amo(1000)+0.3 {
		t.Errorf("at-most-once: Pl(100B)=%.3f not ≫ Pl(1000B)=%.3f", amo(100), amo(1000))
	}
	// At 100 B, at-least-once loses substantially less (paper: 63% vs 85%).
	if alo(100) >= amo(100)-0.05 {
		t.Errorf("at-least-once Pl(100B)=%.3f not below at-most-once %.3f", alo(100), amo(100))
	}
	// Large messages: both semantics nearly lossless; at-least-once best.
	if amo(1000) > 0.10 || alo(1000) > 0.05 {
		t.Errorf("large messages still lossy: amo=%.3f alo=%.3f", amo(1000), alo(1000))
	}
	// The paper's takeaway: above ~300 B the at-most-once risk is low.
	if amo(300) > 0.15 {
		t.Errorf("Pl(300B, at-most-once)=%.3f; paper expects low risk ≥300B", amo(300))
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	points, err := kafkarel.Fig5(kafkarel.FigureOptions{Messages: 4000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pl := map[[2]int64]float64{}
	for _, p := range points {
		pl[[2]int64{int64(p.Timeout / time.Millisecond), int64(p.Semantics)}] = p.Pl
	}
	amo := func(ms int64) float64 { return pl[[2]int64{ms, int64(kafkarel.AtMostOnce)}] }
	alo := func(ms int64) float64 { return pl[[2]int64{ms, int64(kafkarel.AtLeastOnce)}] }

	// Loss falls as the delivery budget grows, approaching zero.
	if amo(250) < amo(2500)+0.08 {
		t.Errorf("at-most-once: Pl(250ms)=%.3f not ≫ Pl(2500ms)=%.3f", amo(250), amo(2500))
	}
	if amo(2500) > 0.05 {
		t.Errorf("Pl(2500ms)=%.3f; paper expects ≈0 for large T_o", amo(2500))
	}
	// Short budgets cause real loss even with no faults (paper: T_o below
	// ~1500 ms loses messages at full load).
	if amo(500) < 0.05 {
		t.Errorf("Pl(500ms)=%.3f; expected visible full-load loss", amo(500))
	}
	// At-least-once significantly reduces the short-budget loss.
	if alo(500) >= amo(500) {
		t.Errorf("at-least-once Pl(500ms)=%.3f not below at-most-once %.3f", alo(500), amo(500))
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	points, err := kafkarel.Fig6(kafkarel.FigureOptions{Messages: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first, last := points[0], points[len(points)-1]
	if first.PollInterval != 0 || last.PollInterval != 90*time.Millisecond {
		t.Fatalf("unexpected axis: %v..%v", first.PollInterval, last.PollInterval)
	}
	// Full load loses; δ=90 ms cuts loss below 10% (the paper's headline).
	if first.Pl < 0.05 {
		t.Errorf("Pl(δ=0)=%.3f; expected visible full-load loss", first.Pl)
	}
	if last.Pl > 0.10 {
		t.Errorf("Pl(δ=90ms)=%.3f; paper expects <10%%", last.Pl)
	}
	if last.Pl >= first.Pl {
		t.Errorf("increasing δ did not reduce loss: %.3f -> %.3f", first.Pl, last.Pl)
	}
	// Roughly monotone: each point at most 5pts above its predecessor.
	for i := 1; i < len(points); i++ {
		if points[i].Pl > points[i-1].Pl+0.05 {
			t.Errorf("non-monotone at δ=%v: %.3f after %.3f",
				points[i].PollInterval, points[i].Pl, points[i-1].Pl)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	points, err := kafkarel.Fig7(kafkarel.FigureOptions{Messages: shapeMessages, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pl := map[[3]int]float64{}
	for _, p := range points {
		pl[[3]int{int(p.LossRate * 100), p.BatchSize, p.Semantics}] = p.Pl
	}
	alo := func(lPct, b int) float64 { return pl[[3]int{lPct, b, kafkarel.AtLeastOnce}] }

	// The knee: TCP copes below ≈8% loss, collapses well above it
	// (Sec. IV-D).
	base := alo(0, 1)
	if alo(8, 1) > base+0.20 {
		t.Errorf("loss already collapsing at 8%%: %.3f vs baseline %.3f", alo(8, 1), base)
	}
	if alo(30, 1) < alo(8, 1)+0.25 {
		t.Errorf("no collapse by 30%%: %.3f vs %.3f at 8%%", alo(30, 1), alo(8, 1))
	}
	// Batching pushes the collapse out: at 16-20% loss, larger batches
	// save a meaningful fraction of messages versus streaming (B=1).
	bestBatched := alo(20, 2)
	for _, bsz := range []int{5, 10} {
		if v := alo(20, bsz); v < bestBatched {
			bestBatched = v
		}
	}
	if bestBatched >= alo(20, 1)-0.05 {
		t.Errorf("batching ineffective at 20%%: best batched %.3f vs B=1 %.3f", bestBatched, alo(20, 1))
	}
	if alo(16, 10) >= alo(16, 1) {
		t.Errorf("B=10 not below B=1 at 16%%: %.3f vs %.3f", alo(16, 10), alo(16, 1))
	}
	// At very high loss everything drowns (paper: at 30% configuration
	// changes matter little; by 50% loss is near total for streaming).
	if alo(50, 1) < 0.5 {
		t.Errorf("Pl(50%%)=%.3f; expected near-total loss", alo(50, 1))
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	points, err := kafkarel.Fig8(kafkarel.FigureOptions{Messages: shapeMessages, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	anyDup := false
	for _, p := range points {
		if p.Pd < 0 || p.Pd > 1 {
			t.Fatalf("Pd out of range: %+v", p)
		}
		if p.LossRate >= 0.15 && p.Pd > 0 {
			anyDup = true
		}
	}
	if !anyDup {
		t.Error("no duplicates observed at moderate loss; Case 5 mechanism dead")
	}
}

func TestFig9Trace(t *testing.T) {
	series, err := kafkarel.Fig9(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 60 { // 10 minutes at 10 s
		t.Fatalf("series = %d points", len(series))
	}
	calm, lossy, spike := false, false, false
	for _, p := range series {
		if p.Loss < 0.02 {
			calm = true
		}
		if p.Loss > 0.08 {
			lossy = true
		}
		if p.DelayMs > 100 {
			spike = true
		}
	}
	if !calm || !lossy || !spike {
		t.Errorf("trace lacks Fig. 9 character: calm=%v lossy=%v delay-spike=%v", calm, lossy, spike)
	}
}

func TestTable1CaseDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reproduction; skipped in -short")
	}
	res, err := kafkarel.Table1(kafkarel.FigureOptions{Messages: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	byCase := map[string]uint64{}
	var sum uint64
	for _, r := range res.Rows {
		byCase[r.Case.String()] = r.Count
		sum += r.Count
	}
	if sum != res.Total {
		t.Errorf("case counts %d do not sum to total %d", sum, res.Total)
	}
	// A moderately faulted retry-enabled run exercises the state machine:
	// most messages deliver first try (Case 1), some deliver via retries
	// (Case 4), and the consumer sees duplicates (Case 5).
	if byCase["case1"] < res.Total/2 {
		t.Errorf("case1 = %d of %d; expected majority", byCase["case1"], res.Total)
	}
	if byCase["case4"] == 0 {
		t.Error("no retry-delivered messages (Case 4)")
	}
	if res.Case5 == 0 {
		t.Error("no duplicates (Case 5)")
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	// A compressed version of the quickstart: measure → train → predict →
	// score → search, all through the public API.
	grid := []kafkarel.Features{}
	for _, sem := range []int{kafkarel.AtMostOnce, kafkarel.AtLeastOnce} {
		for _, l := range []float64{0, 0.1, 0.2} {
			for _, b := range []int{1, 2, 4} {
				grid = append(grid, kafkarel.Features{
					MessageSize:    200,
					Timeliness:     5 * time.Second,
					DelayMs:        20,
					LossRate:       l,
					Semantics:      sem,
					BatchSize:      b,
					PollInterval:   30 * time.Millisecond,
					MessageTimeout: time.Second,
				})
			}
		}
	}
	ds, err := kafkarel.CollectDataset(grid, kafkarel.SweepOptions{Messages: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// CSV round trip through the public API.
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	ds2, err := kafkarel.ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2) != len(ds) {
		t.Fatalf("csv round trip lost samples: %d vs %d", len(ds2), len(ds))
	}

	pred, metrics, err := kafkarel.TrainPredictor(ds, kafkarel.TrainConfig{Seed: 11, TargetMAE: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MAE > 0.15 {
		t.Errorf("tiny-grid MAE = %v; training is broken", metrics.MAE)
	}
	perf, err := kafkarel.NewPerfModel(kafkarel.Calibration{})
	if err != nil {
		t.Fatal(err)
	}
	eval, err := kafkarel.NewEvaluator(pred, perf, kafkarel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	searcher, err := kafkarel.NewSearcher(eval)
	if err != nil {
		t.Fatal(err)
	}
	start := grid[0]
	start.LossRate = 0.2
	_, score, err := searcher.Improve(start, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if score.Gamma <= 0 || score.Gamma > 1 {
		t.Errorf("γ = %v", score.Gamma)
	}
}

func TestObservabilityFacade(t *testing.T) {
	// The observability surface through the public API: metrics ride
	// along on every Result, and a Tracer round-trips through JSONL to
	// the duplicate-chain analysis.
	e := kafkarel.Experiment{
		Features: kafkarel.Features{
			MessageSize:    200,
			Timeliness:     5 * time.Second,
			DelayMs:        100,
			LossRate:       0.15,
			Semantics:      kafkarel.AtLeastOnce,
			BatchSize:      2,
			MessageTimeout: 3 * time.Second,
		},
		Messages: 2000,
		Seed:     7,
	}
	e.Tracer = kafkarel.NewTracer(1 << 16)
	res, err := kafkarel.RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.SegmentsSent == 0 || m.Retransmits == 0 || m.BrokerAppends == 0 ||
		m.RecordsEnqueued != 2000 || m.RTOMax == 0 {
		t.Errorf("metrics not populated: %s", m.Encode())
	}
	var buf bytes.Buffer
	if err := e.Tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := kafkarel.ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace round trip returned no events")
	}
	complete := 0
	for _, chain := range kafkarel.DuplicateChains(events) {
		if kafkarel.IsCompleteDuplicateChain(chain) {
			complete++
		}
	}
	if complete == 0 {
		t.Error("no complete Fig. 8 duplicate chain in the traced run")
	}
}

func TestProducerScalingReducesLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment; skipped in -short")
	}
	// Sec. IV-C: an overloaded producer loses messages; scaling to N
	// producers at N× the poll interval keeps the aggregate rate but
	// bounds each producer's queue.
	e := kafkarel.Experiment{
		Features: kafkarel.Features{
			MessageSize:    200,
			Timeliness:     5 * time.Second,
			DelayMs:        10,
			Semantics:      kafkarel.AtMostOnce,
			BatchSize:      1,
			PollInterval:   0,
			MessageTimeout: 500 * time.Millisecond,
		},
		Messages: 6000,
		Seed:     13,
	}
	single, err := kafkarel.RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := kafkarel.RunScaledExperiment(e, 4)
	if err != nil {
		t.Fatal(err)
	}
	if single.Pl < 0.05 {
		t.Errorf("single overloaded producer Pl = %.3f; expected visible loss", single.Pl)
	}
	if scaled.Pl >= single.Pl/2 {
		t.Errorf("scaling did not relieve the producer: %.3f vs %.3f", scaled.Pl, single.Pl)
	}
	if scaled.Acquired != single.Acquired {
		t.Errorf("scaled run acquired %d, single %d", scaled.Acquired, single.Acquired)
	}
}

// TestTxnFacade drives the transactional surface end to end through
// the public API: generate a fault plan, run the pipeline, verify.
func TestTxnFacade(t *testing.T) {
	plan := kafkarel.GenerateTxnFaultPlan(3, kafkarel.TxnFaultGenConfig{Unclean: true})
	res, err := kafkarel.RunTxnPipeline(context.Background(), kafkarel.TxnExperiment{
		Seed: 3, Messages: 120, AbortEvery: 4, FaultPlan: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TxnStats.TxnsCommitted == 0 {
		t.Fatal("no transaction committed")
	}
	v := kafkarel.VerifyTxnTrial(kafkarel.TxnEvidence{
		Plan:              plan,
		Attempts:          res.Attempts,
		InputKeys:         res.InputKeys,
		CommittedOffsets:  res.CommittedOffsets,
		OutputCommitted:   res.OutputCommitted,
		OutputUncommitted: res.OutputUncommitted,
		Completed:         res.Completed,
	})
	if !v.OK() {
		t.Fatalf("violations: %v", v.Violations)
	}
}
